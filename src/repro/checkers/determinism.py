"""Determinism pass: keep the simulator's replayability machine-checked.

The reproduction's central claim is that every run is exactly
deterministic given its seeds.  Four rule families defend that:

* ``det-wallclock`` — no wall-clock reads (``time.time``,
  ``datetime.now``, ...): simulated time comes from ``Simulator.now``.
* ``det-global-rng`` — no global/unseeded randomness (``random.*``,
  ``np.random.<sampler>``, ``os.urandom``, ``uuid.uuid4``, ...); only
  explicitly seeded ``np.random.default_rng``/``SeedSequence``/
  ``Generator`` streams are allowed.
* ``det-set-iter`` — no iteration over ``set``/``frozenset`` values (or
  ``set.pop()``): set order is salted per interpreter run, so iterating
  one on a scheduling path silently breaks trace replay.  Wrap in
  ``sorted(...)`` instead.
* ``det-fs-order`` — no dependence on filesystem enumeration order
  (``os.listdir``, ``Path.iterdir``, ``glob.glob``, ...) without a
  ``sorted(...)`` wrapper.

Scope: the deterministic core (``repro/sim``, ``repro/core``,
``repro/cluster``, ``repro/hashing``).  Set-typed values are inferred
locally (set literals/comprehensions, ``set()``/``frozenset()`` calls,
and ``set[...]`` annotations on names, parameters and ``self``
attributes); values that arrive untyped from elsewhere are out of reach
of this pass — keep hot-path containers annotated.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ._astutil import ImportMap, call_name, dotted_name
from .base import FileChecker, SourceFile, Violation, register

__all__ = ["DeterminismChecker"]

_WALLCLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.localtime", "time.gmtime", "time.ctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: entropy sources that are never replayable
_ENTROPY = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice",
})

#: the seeded constructors that ARE allowed under numpy.random
_NP_RANDOM_OK = frozenset({
    "default_rng", "SeedSequence", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: random-module names allowed (seeded instance construction)
_RANDOM_OK = frozenset({"random.Random"})

_FS_ENUM = frozenset({
    "os.listdir", "os.scandir", "os.walk",
    "glob.glob", "glob.iglob",
})
_FS_ENUM_METHODS = frozenset({"iterdir", "rglob"})


def _set_bindings(tree: ast.AST) -> tuple[set[str], set[str]]:
    """Names and ``self.<attr>`` attributes bound to set-typed values."""

    def is_set_expr(node: ast.AST | None) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def is_set_annotation(node: ast.AST | None) -> bool:
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            return base in ("set", "frozenset", "Set", "FrozenSet",
                            "typing.Set", "typing.FrozenSet")
        if isinstance(node, ast.Name):
            return node.id in ("set", "frozenset")
        return False

    names: set[str] = set()
    attrs: set[str] = set()

    def bind(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            attrs.add(target.attr)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and is_set_expr(node.value):
            for t in node.targets:
                bind(t)
        elif isinstance(node, ast.AnnAssign) and (
            is_set_annotation(node.annotation) or is_set_expr(node.value)
        ):
            bind(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in [*node.args.posonlyargs, *node.args.args,
                        *node.args.kwonlyargs]:
                if is_set_annotation(arg.annotation):
                    names.add(arg.arg)
    return names, attrs


@register
class DeterminismChecker(FileChecker):
    """No wall clock, no global RNG, no unordered iteration in the core."""

    name = "determinism"
    rules = ("det-wallclock", "det-global-rng", "det-set-iter", "det-fs-order")
    scope = ("src/repro/sim", "src/repro/core",
             "src/repro/cluster", "src/repro/hashing")
    explanations = {
        "det-wallclock": (
            "The simulated core read the wall clock (time.time(), "
            "datetime.now(), perf_counter).  Simulated time comes from "
            "the event loop only; wall-clock reads make runs "
            "irreproducible and break the bisectable-chaos guarantee."
        ),
        "det-global-rng": (
            "Code used the global random module or np.random.* free "
            "functions.  All randomness must flow from the run seed "
            "through an explicit Generator so two runs with the same "
            "config are bit-identical."
        ),
        "det-set-iter": (
            "Iteration over a set (or frozenset) in the core.  Set order "
            "depends on insertion history and hash randomization; wrap "
            "the iteration in sorted() or use a list/dict to keep event "
            "order deterministic."
        ),
        "det-fs-order": (
            "Filesystem enumeration (os.listdir, glob, iterdir) without "
            "sorted().  Directory order is platform-dependent; sort the "
            "listing before acting on it."
        ),
    }

    def check_file(self, source: SourceFile) -> Iterator[Violation]:
        imports = ImportMap(source.tree)
        set_names, set_attrs = _set_bindings(source.tree)
        sorted_args = {
            id(arg)
            for node in ast.walk(source.tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name) and node.func.id == "sorted"
            for arg in node.args
        }

        def is_setlike(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node, ast.Name):
                return node.id in set_names
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                return node.attr in set_attrs
            return False

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node, imports,
                                            sorted_args, is_setlike)
            elif isinstance(node, ast.For) and is_setlike(node.iter):
                yield source.violation(
                    node.iter, "det-set-iter",
                    "iterating a set is order-nondeterministic; "
                    "wrap it in sorted(...)",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if is_setlike(gen.iter):
                        yield source.violation(
                            gen.iter, "det-set-iter",
                            "comprehension over a set is "
                            "order-nondeterministic; wrap it in sorted(...)",
                        )

    def _check_call(self, source, node, imports, sorted_args, is_setlike):
        canonical = call_name(node, imports)
        if canonical is not None:
            if canonical in _WALLCLOCK:
                yield source.violation(
                    node, "det-wallclock",
                    f"wall-clock read {canonical}() breaks replay; "
                    "use Simulator.now",
                )
                return
            if canonical in _ENTROPY:
                yield source.violation(
                    node, "det-global-rng",
                    f"{canonical}() is an unseeded entropy source",
                )
                return
            if canonical.startswith("random.") and canonical not in _RANDOM_OK:
                yield source.violation(
                    node, "det-global-rng",
                    f"{canonical}() draws from the global random state; "
                    "use a seeded np.random.default_rng stream",
                )
                return
            if canonical.startswith("numpy.random.") \
                    and canonical.rsplit(".", 1)[-1] not in _NP_RANDOM_OK:
                yield source.violation(
                    node, "det-global-rng",
                    f"{canonical}() uses numpy's global RNG; draw from a "
                    "seeded np.random.default_rng stream instead",
                )
                return
            if canonical in _FS_ENUM and id(node) not in sorted_args:
                yield source.violation(
                    node, "det-fs-order",
                    f"{canonical}() order is filesystem-dependent; "
                    "wrap it in sorted(...)",
                )
                return
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _FS_ENUM_METHODS and id(node) not in sorted_args:
                yield source.violation(
                    node, "det-fs-order",
                    f".{attr}() order is filesystem-dependent; "
                    "wrap it in sorted(...)",
                )
            elif attr == "glob" and canonical is None \
                    and id(node) not in sorted_args:
                # path.glob(...) on some object; glob.glob is handled above
                yield source.violation(
                    node, "det-fs-order",
                    ".glob() order is filesystem-dependent; "
                    "wrap it in sorted(...)",
                )
            elif attr == "pop" and not node.args \
                    and is_setlike(node.func.value):
                yield source.violation(
                    node, "det-set-iter",
                    "set.pop() removes an arbitrary element; "
                    "pick deterministically (e.g. min/max)",
                )
