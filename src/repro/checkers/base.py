"""Checker framework: source model, suppression, registration, runner.

The framework parses every Python file under the linted tree once, wraps
it in a :class:`SourceFile` (AST + per-line suppressions), and hands the
whole :class:`Project` to each registered checker.  Checkers come in two
shapes:

* a :class:`Checker` subclass overriding :meth:`Checker.check` — gets the
  full project, for cross-file invariants (protocol exhaustiveness,
  metrics-catalogue sync);
* a :class:`FileChecker` subclass overriding
  :meth:`FileChecker.check_file` — called once per in-scope file, for
  local passes (determinism, fault safety).

Suppression: a violation on line N is dropped when line N (or the
enclosing statement's first line) carries a comment of the form::

    # repro: allow[rule-id]
    # repro: allow[rule-a, rule-b]

matching the violation's rule id.  Suppressions are deliberately
per-line and per-rule — there is no file-wide or blanket escape hatch,
so every exception stays visible at the exact site it covers.
"""

from __future__ import annotations

import ast
import re
import tokenize
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Violation",
    "SourceFile",
    "Project",
    "Checker",
    "FileChecker",
    "register",
    "all_checkers",
    "run_lint",
    "LintError",
    "UNUSED_ALLOW_RULE",
    "FRAMEWORK_EXPLANATIONS",
]

#: comment syntax recognized as an inline suppression
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


class LintError(Exception):
    """A problem with the lint invocation itself (bad path, unparsable
    tree root) — distinct from violations found in linted code."""


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: rule id, location, and a human-readable message."""

    path: str          # repo-relative, '/'-separated
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class SourceFile:
    """One parsed Python source file plus its suppression table."""

    def __init__(self, root: Path, path: Path):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {self.rel}: {exc}") from exc
        #: line -> set of rule ids allowed on that line
        self.suppressions: dict[int, set[str]] = _collect_suppressions(self.text)

    def suppressed(self, line: int, rule: str) -> bool:
        allowed = self.suppressions.get(line)
        return allowed is not None and rule in allowed

    def violation(self, node: ast.AST | int, rule: str, message: str) -> Violation:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Violation(path=self.rel, line=line, rule=rule, message=message)


def _collect_suppressions(text: str) -> dict[int, set[str]]:
    """Extract ``# repro: allow[...]`` comments via the tokenizer (so the
    marker is never matched inside a string literal)."""
    table: dict[int, set[str]] = {}
    lines = iter(text.splitlines(keepends=True))
    try:
        for tok in tokenize.generate_tokens(lambda: next(lines, "")):
            if tok.type != tokenize.COMMENT:
                continue
            m = _ALLOW_RE.search(tok.string)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            table.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:  # trailing continuation etc. — AST parsed, so
        pass                     # whatever we collected up to here is complete
    return table


class Project:
    """The linted tree: every parsed source file plus the docs directory."""

    def __init__(self, root: Path, files: Sequence[SourceFile]):
        self.root = root
        self.files = list(files)
        self._by_rel = {f.rel: f for f in self.files}

    def get(self, rel: str) -> SourceFile | None:
        return self._by_rel.get(rel)

    def in_dir(self, *rel_dirs: str) -> list[SourceFile]:
        """Files whose repo-relative path starts with any given directory."""
        prefixes = tuple(d.rstrip("/") + "/" for d in rel_dirs)
        return [f for f in self.files if f.rel.startswith(prefixes)]

    def doc(self, rel: str) -> str | None:
        """Read a non-Python file (e.g. a docs page); None when absent."""
        path = self.root / rel
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class Checker(ABC):
    """A project-wide pass; yields violations (pre-suppression)."""

    #: short kebab-case pass name (shown in ``lint --list``)
    name: str = ""
    #: rule ids this pass can emit, for documentation and --select
    rules: tuple[str, ...] = ()
    #: rule id -> long-form rationale shown by ``repro lint --explain``
    explanations: dict[str, str] = {}

    @abstractmethod
    def check(self, project: Project) -> Iterator[Violation]:
        raise NotImplementedError


class FileChecker(Checker):
    """A per-file pass over a scoped subset of the tree."""

    #: repo-relative directories this pass applies to (empty = whole tree)
    scope: tuple[str, ...] = ()

    def check(self, project: Project) -> Iterator[Violation]:
        files = project.in_dir(*self.scope) if self.scope else project.files
        for f in files:
            yield from self.check_file(f)

    @abstractmethod
    def check_file(self, source: SourceFile) -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: list[type[Checker]] = []


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the default pass list."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} needs a name")
    _REGISTRY.append(cls)
    return cls


def all_checkers() -> list[type[Checker]]:
    return list(_REGISTRY)


def _discover(root: Path, paths: Iterable[str] | None) -> list[Path]:
    """Python files to lint, in sorted (deterministic) order."""
    if paths:
        out: list[Path] = []
        for p in paths:
            path = (root / p) if not Path(p).is_absolute() else Path(p)
            if path.is_dir():
                out.extend(sorted(path.rglob("*.py")))
            elif path.is_file():
                out.append(path)
            else:
                raise LintError(f"no such file or directory: {p}")
        return out
    src = root / "src" / "repro"
    if not src.is_dir():
        raise LintError(
            f"{root} does not look like the repro repo (no src/repro); "
            "pass explicit paths or run from the repo root"
        )
    return sorted(src.rglob("*.py"))


#: rule id emitted by the framework itself for allow-comments that
#: suppress nothing (keeps the allowlist from rotting as code changes)
UNUSED_ALLOW_RULE = "lint-unused-allow"

#: framework-level rule rationale, merged into ``lint --explain``
FRAMEWORK_EXPLANATIONS = {
    UNUSED_ALLOW_RULE: (
        "A `# repro: allow[rule]` comment suppressed nothing in this run: "
        "either the flagged code was fixed (delete the comment), the rule "
        "id is misspelled, or the comment sits on the wrong line.  Stale "
        "suppressions are how real findings sneak back in — the allowlist "
        "must shrink the moment the exception it covered goes away."
    ),
}


def run_lint(
    root: Path,
    paths: Iterable[str] | None = None,
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Run every registered checker; returns surviving violations sorted
    by (path, line, rule).  ``select`` restricts to pass names or rule-id
    prefixes (e.g. ``determinism`` or ``det-``).

    On a full (unselected) run, every ``# repro: allow[...]`` comment that
    suppressed no finding is itself reported as ``lint-unused-allow`` —
    a selected run skips this, since the unexercised passes would make
    their suppressions look stale.
    """
    # Imported here so registration happens on first use, not import of base.
    from . import passes  # noqa: F401  (registration side effect)

    root = root.resolve()
    files = [SourceFile(root, p) for p in _discover(root, paths)]
    project = Project(root, files)
    wanted = {s.rstrip("-") for s in select} if select else None
    out: list[Violation] = []
    consumed: set[tuple[str, int, str]] = set()
    for cls in all_checkers():
        if wanted is not None:
            names = {cls.name, *(r.split("-")[0] for r in cls.rules)}
            if not (wanted & names) and not any(
                r.startswith(tuple(wanted)) for r in cls.rules
            ):
                continue
        for v in cls().check(project):
            source = project.get(v.path)
            if source is not None and source.suppressed(v.line, v.rule):
                consumed.add((v.path, v.line, v.rule))
                continue
            out.append(v)
    if wanted is None:
        for f in project.files:
            for line in sorted(f.suppressions):
                for rule in sorted(f.suppressions[line]):
                    if (f.rel, line, rule) in consumed:
                        continue
                    if rule == UNUSED_ALLOW_RULE:
                        continue
                    out.append(f.violation(
                        line, UNUSED_ALLOW_RULE,
                        f"suppression `repro: allow[{rule}]` matches no "
                        "finding on this line — remove it (or fix the "
                        "rule id)",
                    ))
    return sorted(out)
