"""Violation reporters: text, machine-readable JSON, and SARIF.

The JSON document carries per-rule counts (``"rules"``) with *stable*
rule ids, so diff-style tooling can gate on "no new findings per rule"
against a committed baseline (see ``repro lint --baseline`` and the
``LINT_BASE.json`` at the repo root).  The SARIF 2.1.0 document is what
the CI lint job uploads to GitHub code scanning, turning findings into
PR annotations at the exact line.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence
from typing import Any, TextIO

from .base import FRAMEWORK_EXPLANATIONS, Violation, all_checkers

__all__ = ["report_text", "report_json", "report_sarif", "rule_counts"]


def rule_counts(violations: Sequence[Violation]) -> dict[str, int]:
    """Stable rule-id -> finding-count map (sorted keys)."""
    return dict(sorted(Counter(v.rule for v in violations).items()))


def report_text(violations: Sequence[Violation], out: TextIO) -> None:
    """``path:line: rule message`` per finding, plus a summary line."""
    for v in violations:
        out.write(v.format() + "\n")
    n = len(violations)
    if n:
        rules = sorted({v.rule for v in violations})
        out.write(f"found {n} violation{'s' if n != 1 else ''} "
                  f"({', '.join(rules)})\n")
    else:
        out.write("clean: no violations\n")


def report_json(violations: Sequence[Violation], out: TextIO) -> None:
    """Stable JSON document::

        {"count": N, "rules": {"rule-id": n, ...}, "violations": [...]}

    ``rules`` keys are the stable rule ids every pass declares; a
    baseline gate compares these counts, never message text (messages
    may be reworded freely).
    """
    doc = {
        "count": len(violations),
        "rules": rule_counts(violations),
        "violations": [v.as_dict() for v in violations],
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")


def _rule_index() -> dict[str, str]:
    """rule id -> short description, from every registered pass."""
    from . import passes  # noqa: F401  (registration side effect)

    index: dict[str, str] = dict(FRAMEWORK_EXPLANATIONS)
    for cls in all_checkers():
        for rule in cls.rules:
            index.setdefault(
                rule,
                cls.explanations.get(rule, cls.__doc__ or cls.name),
            )
    return index


def report_sarif(violations: Sequence[Violation], out: TextIO) -> None:
    """SARIF 2.1.0 for GitHub code scanning (PR annotations).

    One run, one ``repro-lint`` driver; every rule any pass can emit is
    declared in ``rules`` (so suppressed-to-zero rules still appear in
    the code-scanning UI), and each result carries a repo-relative
    artifact location.
    """
    index = _rule_index()
    for v in violations:  # rules observed but undeclared (defensive)
        index.setdefault(v.rule, v.rule)
    rules: list[dict[str, Any]] = [
        {
            "id": rule,
            "shortDescription": {"text": rule},
            "fullDescription": {"text": text},
            "helpUri": (
                "https://github.com/"  # resolved by code scanning relative
                # to the repo; docs live in-tree:
                "../blob/main/docs/STATIC_ANALYSIS.md"
            ),
        }
        for rule, text in sorted(index.items())
    ]
    results = [
        {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(v.line, 1)},
                    }
                }
            ],
        }
        for v in violations
    ]
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "docs/STATIC_ANALYSIS.md"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")
