"""Violation reporters: line-per-finding text and machine-readable JSON."""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import TextIO

from .base import Violation

__all__ = ["report_text", "report_json"]


def report_text(violations: Sequence[Violation], out: TextIO) -> None:
    """``path:line: rule message`` per finding, plus a summary line."""
    for v in violations:
        out.write(v.format() + "\n")
    n = len(violations)
    if n:
        rules = sorted({v.rule for v in violations})
        out.write(f"found {n} violation{'s' if n != 1 else ''} "
                  f"({', '.join(rules)})\n")
    else:
        out.write("clean: no violations\n")


def report_json(violations: Sequence[Violation], out: TextIO) -> None:
    """Stable JSON document: ``{"violations": [...], "count": N}``."""
    doc = {
        "count": len(violations),
        "violations": [v.as_dict() for v in violations],
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")
