"""Small AST helpers shared by the concrete passes."""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "dotted_name", "call_name", "first_str_arg"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Maps local names to the canonical module path they were bound from.

    ``import numpy as np`` -> ``np`` resolves to ``numpy``;
    ``from datetime import datetime as dt`` -> ``dt`` resolves to
    ``datetime.datetime``.  :meth:`resolve` canonicalizes a dotted local
    name by substituting its first segment.
    """

    def __init__(self, tree: ast.AST):
        self._alias: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self._alias[(a.asname or a.name).split(".")[0]] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for a in node.names:
                    if a.name == "*":
                        continue
                    self._alias[a.asname or a.name] = f"{node.module}.{a.name}"

    def resolve(self, local_dotted: str) -> str:
        head, _, rest = local_dotted.partition(".")
        canonical = self._alias.get(head, head)
        return f"{canonical}.{rest}" if rest else canonical


def call_name(node: ast.Call, imports: ImportMap) -> str | None:
    """Canonical dotted path of a call target, via the import map."""
    local = dotted_name(node.func)
    if local is None:
        return None
    return imports.resolve(local)


def first_str_arg(node: ast.Call) -> str | None:
    """The first positional argument if it is a plain string literal."""
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None
