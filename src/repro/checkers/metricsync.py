"""Metrics-catalogue sync pass: code literals <-> docs/OBSERVABILITY.md.

Every metric the code publishes must be documented in the catalogue
table of ``docs/OBSERVABILITY.md``, and every catalogue row must still
have a publishing site — a one-to-one contract in both directions:

* ``metrics-uncatalogued`` — a metric name literal appears in code but
  not in the catalogue (dashboards and the byte-conservation docs would
  silently miss it);
* ``metrics-stale-catalogue`` — a catalogue row names a metric no code
  publishes any more (docs rot).

A "metric name literal" is the first positional string argument of an
attribute call named ``counter``/``gauge``/``histogram``/``inc``/
``set_gauge``/``observe`` — the full MetricsRegistry publishing surface.
Instrument-level calls (``some_counter.inc(5)``) have no string first
argument and are ignored, as are names that do not look like metric
identifiers.  The catalogue side parses the first column of the
"Metric catalogue" table, honoring comma-separated multi-name rows.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from ._astutil import first_str_arg
from .base import Checker, Project, Violation, register

__all__ = ["MetricSyncChecker"]

_CATALOGUE_REL = "docs/OBSERVABILITY.md"
_CATALOGUE_HEADING = "## Metric catalogue"

_REGISTRY_METHODS = frozenset(
    {"counter", "gauge", "histogram", "inc", "set_gauge", "observe"}
)

#: lowercase dotted/underscored identifiers, e.g. ``net.sent_bytes``
_METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
_BACKTICKED_RE = re.compile(r"`([^`]+)`")


def _catalogue_names(text: str) -> dict[str, int]:
    """Metric names in the catalogue table -> line number (1-based)."""
    names: dict[str, int] = {}
    in_section = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.startswith("## "):
            in_section = line.strip() == _CATALOGUE_HEADING
            continue
        if not in_section or not line.lstrip().startswith("|"):
            continue
        first_cell = line.split("|")[1] if "|" in line[1:] else ""
        for token in _BACKTICKED_RE.findall(first_cell):
            for name in token.split(","):
                name = name.strip().strip("`")
                if _METRIC_NAME_RE.match(name):
                    names.setdefault(name, lineno)
    return names


@register
class MetricSyncChecker(Checker):
    """Published metric names and the docs catalogue agree, both ways."""

    name = "metrics"
    rules = ("metrics-uncatalogued", "metrics-stale-catalogue")
    explanations = {
        "metrics-uncatalogued": (
            "A metric is published in code but missing from the metric "
            "catalogue table in docs/OBSERVABILITY.md.  Every instrument "
            "must be documented — add a catalogue row (name, type, "
            "meaning) in the '## Metric catalogue' section."
        ),
        "metrics-stale-catalogue": (
            "The docs catalogue lists a metric no code publishes any "
            "more.  Remove the row (or restore the instrument) so the "
            "catalogue stays a trustworthy inventory."
        ),
    }

    def check(self, project: Project) -> Iterator[Violation]:
        text = project.doc(_CATALOGUE_REL)
        if text is None:
            # Linting a tree without the docs page (e.g. a fixture dir).
            return
        catalogue = _catalogue_names(text)

        published: dict[str, tuple[str, int]] = {}
        for f in project.in_dir("src/repro"):
            for node in ast.walk(f.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _REGISTRY_METHODS):
                    continue
                name = first_str_arg(node)
                if name is None or not _METRIC_NAME_RE.match(name):
                    continue
                site = (f.rel, node.lineno)
                if name not in published:
                    published[name] = site
                if name not in catalogue:
                    yield f.violation(
                        node, "metrics-uncatalogued",
                        f"metric {name!r} is not documented in "
                        f"{_CATALOGUE_REL} (Metric catalogue table)",
                    )

        for name in sorted(set(catalogue) - set(published)):
            yield Violation(
                path=_CATALOGUE_REL,
                line=catalogue[name],
                rule="metrics-stale-catalogue",
                message=f"catalogue lists {name!r} but no code publishes it",
            )
