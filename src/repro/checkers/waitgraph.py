"""Protocol wait-graph pass: who blocks on which message, who sends it.

The runtime protocol is request/response between long-lived process
classes (scheduler, join node, data source, pool, backup scheduler).
A *wait-state* is a method that parks on the class's mailbox until a
specific message type arrives (an ``isinstance`` exit condition around a
``recv()``/``get()`` loop).  Two things can rot as the protocol grows:

* ``wg-cycle`` — class A blocks waiting for a message only B sends while
  B blocks waiting for a message only A sends: a potential distributed
  deadlock.  Three refinements keep this honest on real code:

  - a wait-state that routes unmatched traffic through a general
    dispatcher (any ``self._dispatch*`` call) is *non-exclusive*: it
    services the rest of the protocol while parked, so it contributes no
    blocking edge (the scheduler's recruit/ack waits are this shape);
  - an edge ``A --m--> B`` is discharged when B's own wait-state in the
    cycle can still *send* m from inside its wait loop (directly or via
    methods it calls) — e.g. a source parked on StartProbe still
    executes ReplayOrders, which is exactly what un-blocks a scheduler
    parked on ReplayDone;
  - self-edges are ignored (self-sent PollTick ticker patterns).

* ``wg-no-sender`` — a wait-state's exit message is constructed nowhere
  in ``repro.core``/``repro.cluster``/``repro.workload`` outside
  ``messages.py``: the wait can never be satisfied.  Dead sends are the
  protocol pass's job (``proto-unhandled``); dead *waits* are this one's.

The message inventory is shared with the protocol-exhaustiveness pass
(same ``messages.py`` parse, same dataclass filter), so the two passes
can never disagree about what the protocol *is*.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .base import Checker, Project, SourceFile, Violation, register
from .protocol import _MESSAGES_REL, _SEND_ATTRS, _message_classes
from ._astutil import dotted_name

__all__ = ["WaitGraphChecker"]

#: receiver path segments that identify a mailbox object (shared shape
#: with the resource-safety pass)
_MAILBOXY = frozenset({"mailbox", "inbox"})

#: directories scanned for senders of a message
_SENDER_DIRS = ("src/repro/core", "src/repro/cluster", "src/repro/workload")


def _is_mailbox_wait(call: ast.Call) -> bool:
    """``X.get()`` / ``X.recv()`` where X's dotted path ends in a mailbox."""
    if not isinstance(call.func, ast.Attribute):
        return False
    if call.func.attr not in ("get", "recv"):
        return False
    receiver = dotted_name(call.func.value)
    if receiver is None:
        return False
    return receiver.rsplit(".", 1)[-1] in _MAILBOXY


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested function definitions."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _isinstance_refs(fn: ast.AST) -> set[str]:
    refs: set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" and len(node.args) == 2:
            second = node.args[1]
            elts = second.elts if isinstance(second, ast.Tuple) else [second]
            for e in elts:
                if isinstance(e, ast.Name):
                    refs.add(e.id)
                elif isinstance(e, ast.Attribute):
                    refs.add(e.attr)
    return refs


def _direct_sends(fn: ast.AST, messages: set[str]) -> set[str]:
    """Message classes this method hands to a transport send or a put."""
    out: set[str] = set()
    bindings: dict[str, set[str]] = {}
    for node in _own_nodes(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name) \
                and node.value.func.id in messages:
            for t in node.targets:
                if isinstance(t, ast.Name):
                    bindings.setdefault(t.id, set()).add(node.value.func.id)
    for node in _own_nodes(fn):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr in _SEND_ATTRS and node.args:
            payload: ast.AST | None = node.args[-1]
        elif node.func.attr == "put" and node.args:
            payload = node.args[0]
        else:
            continue
        if isinstance(payload, ast.Call) \
                and isinstance(payload.func, ast.Name) \
                and payload.func.id in messages:
            out.add(payload.func.id)
        elif isinstance(payload, ast.Name):
            out |= bindings.get(payload.id, set()) & messages
    return out


def _self_calls(fn: ast.AST) -> set[str]:
    """Names of own methods this method invokes (``self.foo(...)``)."""
    out: set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "self":
            out.add(node.func.attr)
    return out


@dataclass
class _WaitState:
    """One method that parks on the class mailbox."""

    cls: str
    method: str
    source: SourceFile
    lineno: int
    awaited: set[str] = field(default_factory=set)
    exclusive: bool = False
    #: messages the class can emit from inside this wait loop
    sends_while_waiting: set[str] = field(default_factory=set)


@dataclass
class _ProcessClass:
    name: str
    source: SourceFile
    lineno: int
    waits: list[_WaitState] = field(default_factory=list)
    sends: set[str] = field(default_factory=set)


def _closure(graph: dict[str, set[str]], seeds: dict[str, set[str]]
             ) -> dict[str, set[str]]:
    """Transitive closure of per-method sends over the self-call graph."""
    out = {m: set(s) for m, s in seeds.items()}
    changed = True
    while changed:
        changed = False
        for method, callees in graph.items():
            acc = out.setdefault(method, set())
            before = len(acc)
            for callee in callees:
                acc |= out.get(callee, set())
            changed = changed or len(acc) != before
    return out


def _analyze_class(
    node: ast.ClassDef, source: SourceFile, messages: set[str]
) -> _ProcessClass | None:
    methods = {
        n.name: n for n in node.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    if not methods:
        return None
    calls = {name: _self_calls(fn) & set(methods) for name, fn in methods.items()}
    direct = {name: _direct_sends(fn, messages) for name, fn in methods.items()}
    sends = _closure(calls, direct)

    pc = _ProcessClass(node.name, source, node.lineno)
    pc.sends = set().union(*sends.values()) if sends else set()
    for name, fn in methods.items():
        has_wait = any(
            isinstance(n, ast.Call) and _is_mailbox_wait(n)
            for n in _own_nodes(fn)
        )
        if not has_wait:
            continue
        awaited = _isinstance_refs(fn) & messages
        if not awaited:
            continue
        exclusive = not any(c.startswith("_dispatch") for c in calls[name])
        pc.waits.append(_WaitState(
            cls=node.name, method=name, source=source, lineno=fn.lineno,
            awaited=awaited, exclusive=exclusive,
            sends_while_waiting=sends.get(name, set()),
        ))
    if not pc.waits and not pc.sends:
        return None
    return pc


@register
class WaitGraphChecker(Checker):
    """Distributed-deadlock hazards in the message protocol (see module)."""

    name = "waitgraph"
    rules = ("wg-cycle", "wg-no-sender")
    explanations = {
        "wg-cycle": (
            "Two (or more) process classes each sit in an *exclusive* "
            "wait-state — a mailbox loop that exits only on specific "
            "message types and never calls a general dispatcher — and "
            "each one's exit message is sent only by another class in the "
            "ring.  If those waits ever overlap in time, nobody can send "
            "and nobody can proceed: a distributed deadlock.  Break it by "
            "servicing other traffic while waiting (route unmatched "
            "messages through a _dispatch* method), by sending the "
            "ring-breaking message from inside the wait loop, or — if "
            "the waits provably never overlap — suppress with "
            "`# repro: allow[wg-cycle]` on the wait method and document "
            "the phase argument."
        ),
        "wg-no-sender": (
            "A wait-state's exit message is constructed nowhere in "
            "repro.core/repro.cluster/repro.workload outside messages.py, "
            "so the wait can never be satisfied: either dead protocol "
            "(delete the wait and the message) or a sender that was "
            "renamed/removed without updating the receiver.  The "
            "runtime symptom would be a DeadlockError at end of run — "
            "this catches it at lint time."
        ),
    }

    def check(self, project: Project) -> Iterator[Violation]:
        msgfile = project.get(_MESSAGES_REL)
        if msgfile is None:
            return
        classes, _exported = _message_classes(msgfile)
        messages = {c.name for c in classes}

        # -- collect process classes with their waits and sends ---------
        procs: list[_ProcessClass] = []
        for f in project.in_dir("src/repro/core"):
            if f.rel == _MESSAGES_REL:
                continue
            for node in f.tree.body:
                if isinstance(node, ast.ClassDef):
                    pc = _analyze_class(node, f, messages)
                    if pc is not None:
                        procs.append(pc)

        # -- constructor sites anywhere (for wg-no-sender) --------------
        constructed: set[str] = set()
        for f in project.in_dir(*_SENDER_DIRS):
            if f.rel == _MESSAGES_REL:
                continue
            for node in ast.walk(f.tree):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Name) \
                        and node.func.id in messages:
                    constructed.add(node.func.id)

        for pc in procs:
            for w in pc.waits:
                for m in sorted(w.awaited - constructed):
                    yield w.source.violation(
                        w.lineno, "wg-no-sender",
                        f"{pc.name}.{w.method} waits for {m}, which is "
                        "constructed nowhere in core/cluster/workload — "
                        "this wait can never be satisfied",
                    )

        yield from self._cycles(procs)

    # ------------------------------------------------------------------
    def _cycles(self, procs: list[_ProcessClass]) -> Iterator[Violation]:
        senders: dict[str, set[str]] = {}
        for pc in procs:
            for m in pc.sends:
                senders.setdefault(m, set()).add(pc.name)
        by_name = {pc.name: pc for pc in procs}

        # blocking edges: (A, wait-state, message m, B) with A != B
        edges: dict[str, list[tuple[_WaitState, str, str]]] = {}
        for pc in procs:
            for w in pc.waits:
                if not w.exclusive:
                    continue
                for m in sorted(w.awaited):
                    for b in sorted(senders.get(m, ())):
                        if b != pc.name:
                            edges.setdefault(pc.name, []).append((w, m, b))

        reported: set[frozenset[tuple[str, str]]] = set()

        def dfs(start: str, cls: str,
                trail: list[tuple[_WaitState, str, str]]) -> Iterator[
                    list[tuple[_WaitState, str, str]]]:
            for w, m, nxt in edges.get(cls, ()):
                if nxt == start and trail:
                    yield [*trail, (w, m, nxt)]
                elif all(nxt != t[2] for t in trail) and nxt != cls \
                        and len(trail) < 3:
                    yield from dfs(start, nxt, [*trail, (w, m, nxt)])

        for start in sorted(edges):
            for cycle in dfs(start, start, []):
                key = frozenset((w.cls, m) for w, m, _ in cycle)
                if key in reported:
                    continue
                reported.add(key)
                if self._discharged(cycle, by_name):
                    continue
                yield self._report(cycle)

    @staticmethod
    def _discharged(cycle: list[tuple[_WaitState, str, str]],
                    by_name: dict[str, _ProcessClass]) -> bool:
        """Can any participant still send its predecessor's message from
        inside its own wait loop?  Then the ring cannot jam."""
        states = {w.cls: w for w, _, _ in cycle}
        for w, m, nxt in cycle:
            nxt_state = states.get(nxt)
            if nxt_state is not None and m in nxt_state.sends_while_waiting:
                return True
        return False

    @staticmethod
    def _report(cycle: list[tuple[_WaitState, str, str]]) -> Violation:
        first = cycle[0][0]
        hops = ", ".join(
            f"{w.cls}.{w.method} waits for {m} from {nxt}"
            for w, m, nxt in cycle
        )
        return first.source.violation(
            first.lineno, "wg-cycle",
            f"potential distributed deadlock: {hops} — if these waits "
            "overlap, no participant can proceed "
            "(see `repro lint --explain wg-cycle`)",
        )
