"""Aggregator importing every concrete pass for registration.

``base.run_lint`` imports this module before building the pass list, so
adding a checker is: write the module, ``@register`` the class, import
it here, document its rules in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from .determinism import DeterminismChecker
from .faultsafety import FaultSafetyChecker
from .metricsync import MetricSyncChecker
from .protocol import ProtocolChecker
from .resourcesafety import ResourceSafetyChecker
from .waitgraph import WaitGraphChecker

__all__ = [
    "DeterminismChecker",
    "ProtocolChecker",
    "MetricSyncChecker",
    "FaultSafetyChecker",
    "ResourceSafetyChecker",
    "WaitGraphChecker",
]
