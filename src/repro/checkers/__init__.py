"""Repo-specific static analysis (``python -m repro lint``).

AST-based passes that machine-check the invariants the reproduction's
determinism and protocol claims rest on.  See ``docs/STATIC_ANALYSIS.md``
for the rule catalogue, suppression syntax and extension guide.
"""

from __future__ import annotations

from .base import (
    Checker,
    FileChecker,
    LintError,
    Project,
    SourceFile,
    Violation,
    all_checkers,
    register,
    run_lint,
)
from .reporting import report_json, report_text

__all__ = [
    "Checker",
    "FileChecker",
    "LintError",
    "Project",
    "SourceFile",
    "Violation",
    "all_checkers",
    "register",
    "run_lint",
    "report_json",
    "report_text",
]
