"""Repo-specific static analysis (``python -m repro lint``).

AST-based passes that machine-check the invariants the reproduction's
determinism and protocol claims rest on.  See ``docs/STATIC_ANALYSIS.md``
for the rule catalogue, suppression syntax and extension guide.
"""

from __future__ import annotations

from .base import (
    FRAMEWORK_EXPLANATIONS,
    UNUSED_ALLOW_RULE,
    Checker,
    FileChecker,
    LintError,
    Project,
    SourceFile,
    Violation,
    all_checkers,
    register,
    run_lint,
)
from .reporting import report_json, report_sarif, report_text, rule_counts

__all__ = [
    "Checker",
    "FileChecker",
    "LintError",
    "Project",
    "SourceFile",
    "Violation",
    "all_checkers",
    "register",
    "run_lint",
    "report_json",
    "report_sarif",
    "report_text",
    "rule_counts",
    "FRAMEWORK_EXPLANATIONS",
    "UNUSED_ALLOW_RULE",
]
