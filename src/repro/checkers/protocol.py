"""Protocol exhaustiveness pass: messages, dispatch arms and send sites.

The runtime's wire protocol is the set of public dataclasses in
``repro/core/messages.py``; dispatch is isinstance-chain based (and, in
future code, possibly ``match``/``case``).  Three rules keep the two
sides from drifting:

* ``proto-unhandled`` — every concrete public message dataclass must be
  referenced in at least one dispatch arm (``isinstance(msg, Cls)`` or a
  ``case Cls(...)`` pattern) somewhere in ``repro/core`` outside
  ``messages.py``.  A message nobody can receive is dead protocol — or,
  worse, a deadlock waiting for the sender's timeout.
* ``proto-unregistered-send`` — every payload handed to a transport send
  (``ctx.send``/``Network.send``/``Scheduler.send_to_join``) must be a
  registered message class.  Ad-hoc payloads bypass ``nbytes``/``kind``
  accounting and break the byte-conservation checks.
* ``proto-missing-export`` — every public message dataclass must appear
  in the module's ``__all__`` so star-importing strategy code sees the
  full protocol.

Payload classification is name-based: a send payload that is a direct
constructor call (``send(src, dst, SpillOrder(...))``) or a local name
assigned from one (``msg = DataChunk(...); send(..., msg)``) is checked;
payloads that flow in as parameters are invisible to this pass — the
runtime mirror test in ``tests/`` covers those.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .base import Checker, Project, SourceFile, Violation, register

__all__ = ["ProtocolChecker"]

_MESSAGES_REL = "src/repro/core/messages.py"

#: transport entry points whose final positional argument is the payload
_SEND_ATTRS = frozenset({"send", "send_to_join"})


def _message_classes(source: SourceFile) -> tuple[list[ast.ClassDef], set[str]]:
    """Concrete public dataclasses in messages.py, plus its ``__all__``."""
    classes: list[ast.ClassDef] = []
    exported: set[str] = set()
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                if isinstance(target, ast.Name) and target.id == "dataclass":
                    classes.append(node)
                    break
                if isinstance(target, ast.Attribute) and target.attr == "dataclass":
                    classes.append(node)
                    break
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id == "__all__" \
                        and isinstance(node.value, (ast.List, ast.Tuple)):
                    exported = {
                        e.value for e in node.value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    }
    return classes, exported


def _dispatch_refs(source: SourceFile) -> set[str]:
    """Class names referenced in dispatch position in one file."""
    refs: set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "isinstance" and len(node.args) == 2:
            second = node.args[1]
            elts = second.elts if isinstance(second, ast.Tuple) else [second]
            for e in elts:
                if isinstance(e, ast.Name):
                    refs.add(e.id)
                elif isinstance(e, ast.Attribute):
                    refs.add(e.attr)
        elif isinstance(node, ast.match_case) \
                and isinstance(node.pattern, ast.MatchClass):
            cls = node.pattern.cls
            if isinstance(cls, ast.Name):
                refs.add(cls.id)
            elif isinstance(cls, ast.Attribute):
                refs.add(cls.attr)
    return refs


def _constructor_bindings(tree: ast.AST) -> dict[str, set[str]]:
    """name -> capitalized class names it is assigned from (file-wide)."""
    out: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name) \
                and node.value.func.id[:1].isupper():
            for t in node.targets:
                if isinstance(t, ast.Name):
                    out.setdefault(t.id, set()).add(node.value.func.id)
    return out


@register
class ProtocolChecker(Checker):
    """messages.py, its dispatch arms, and transport payloads stay in sync."""

    name = "protocol"
    rules = ("proto-unhandled", "proto-unregistered-send",
             "proto-missing-export")
    explanations = {
        "proto-unhandled": (
            "A message class in core/messages.py has no dispatch arm "
            "anywhere in repro/core.  A receiver getting it would drop "
            "it on the floor or park forever — wire a handler or delete "
            "the message."
        ),
        "proto-unregistered-send": (
            "Code sends a payload type that is not declared in "
            "core/messages.py.  The protocol inventory (which the "
            "wait-graph pass also consumes) must list every type that "
            "crosses the network."
        ),
        "proto-missing-export": (
            "A message class is defined in core/messages.py but missing "
            "from its __all__ — add it so the protocol surface stays "
            "explicit."
        ),
    }

    def check(self, project: Project) -> Iterator[Violation]:
        messages = project.get(_MESSAGES_REL)
        if messages is None:
            # Linting a subtree that does not include the protocol module.
            return
        classes, exported = _message_classes(messages)
        names = {c.name for c in classes}

        refs: set[str] = set()
        for f in project.in_dir("src/repro/core"):
            if f.rel != _MESSAGES_REL:
                refs |= _dispatch_refs(f)

        for cls in classes:
            if cls.name not in refs:
                yield messages.violation(
                    cls, "proto-unhandled",
                    f"message {cls.name} has no dispatch arm anywhere in "
                    "repro/core — receivers would drop or deadlock on it",
                )
            if cls.name not in exported:
                yield messages.violation(
                    cls, "proto-missing-export",
                    f"message {cls.name} is missing from __all__",
                )

        for f in project.in_dir("src/repro/core", "src/repro/cluster"):
            if f.rel == _MESSAGES_REL:
                continue
            bindings = _constructor_bindings(f.tree)
            for node in ast.walk(f.tree):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _SEND_ATTRS
                        and node.args):
                    continue
                payload = node.args[-1]
                candidates: set[str] = set()
                if isinstance(payload, ast.Call) \
                        and isinstance(payload.func, ast.Name) \
                        and payload.func.id[:1].isupper():
                    candidates = {payload.func.id}
                elif isinstance(payload, ast.Name):
                    candidates = bindings.get(payload.id, set())
                for cand in sorted(candidates - names):
                    yield f.violation(
                        node, "proto-unregistered-send",
                        f"send payload {cand} is not a registered message "
                        "class in core/messages.py",
                    )
