"""Fault-safety pass: exception handling on recovery paths.

PR 2's recovery machinery distinguishes *maskable* faults (retried,
degraded, spilled) from *unmaskable* ones, which must surface as
``UnrecoverableFaultError``.  Two rules keep handlers honest:

* ``fault-bare-except`` — a bare ``except:`` catches ``SystemExit``,
  ``KeyboardInterrupt`` and the simulator's own interrupt plumbing;
  name the exception type instead.
* ``fault-swallowed`` — a handler catching ``Exception``,
  ``BaseException`` or ``UnrecoverableFaultError`` whose body never
  ``raise``\\ s swallows exactly the class of failures the fault model
  promises to surface.  Re-raise, or narrow the handler to the specific
  exception being masked.

Narrow handlers (``except ValueError: pass`` around a best-effort
cleanup) are fine and not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ._astutil import dotted_name
from .base import FileChecker, SourceFile, Violation, register

__all__ = ["FaultSafetyChecker"]

_BROAD = frozenset({"Exception", "BaseException", "UnrecoverableFaultError"})


def _handler_types(handler: ast.ExceptHandler) -> set[str]:
    """Leaf type names caught by a handler (``a.b.C`` -> ``C``)."""
    node = handler.type
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    out: set[str] = set()
    for e in elts:
        name = dotted_name(e) if e is not None else None
        if name is not None:
            out.add(name.rsplit(".", 1)[-1])
    return out


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


@register
class FaultSafetyChecker(FileChecker):
    """No bare excepts; broad/unrecoverable catches must re-raise."""

    name = "faultsafety"
    rules = ("fault-bare-except", "fault-swallowed")
    explanations = {
        "fault-bare-except": (
            "A bare `except:` catches SystemExit, KeyboardInterrupt and "
            "the simulator's process interrupts, so a killed process can "
            "keep running as a zombie.  Name the exception types the "
            "handler actually expects."
        ),
        "fault-swallowed": (
            "A handler catches Exception/BaseException/"
            "UnrecoverableFaultError without re-raising.  Unmaskable "
            "faults must surface to the kernel — swallowing them turns a "
            "crash the fault injector planted into a silent wrong "
            "answer.  Narrow the except clause or re-raise."
        ),
    }

    def check_file(self, source: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield source.violation(
                    node, "fault-bare-except",
                    "bare except catches SystemExit/KeyboardInterrupt and "
                    "simulator interrupts; name the exception type",
                )
                continue
            broad = _handler_types(node) & _BROAD
            if broad and not _reraises(node):
                caught = ", ".join(sorted(broad))
                yield source.violation(
                    node, "fault-swallowed",
                    f"handler catches {caught} without re-raising — "
                    "unmaskable faults must surface, not be swallowed",
                )
