"""On-the-fly relation streams, partitioned across data sources.

The paper generates relations R and S *as the join progresses*, on multiple
source nodes ("simulates data streaming from a distributed database or
table streams in a multi-join operation").  :class:`RelationStream` gives
each source an independent, seeded, reproducible stream of generation
batches; concatenating all sources' batches yields the full relation, which
is what the sequential reference join consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

from ..config import WorkloadSpec
from .distributions import draw_values

__all__ = ["RelationStream", "source_share", "materialize_relation"]


def source_share(total: int, n_sources: int, source_index: int) -> int:
    """Tuples assigned to one source: even split, remainder to low indices."""
    if not (0 <= source_index < n_sources):
        raise IndexError(f"source {source_index} out of {n_sources}")
    base, rem = divmod(total, n_sources)
    return base + (1 if source_index < rem else 0)


@dataclass(frozen=True)
class RelationStream:
    """One source's view of one relation (R or S)."""

    spec: WorkloadSpec
    relation: str  # "R" or "S"
    n_sources: int
    source_index: int

    def __post_init__(self) -> None:
        if self.relation not in ("R", "S"):
            raise ValueError(f"relation must be 'R' or 'S', got {self.relation!r}")

    @property
    def total_tuples(self) -> int:
        whole = (
            self.spec.real_r_tuples if self.relation == "R" else self.spec.real_s_tuples
        )
        return source_share(whole, self.n_sources, self.source_index)

    def _rng(self) -> np.random.Generator:
        # Independent, reproducible stream per (seed, relation, source).
        root = np.random.SeedSequence(
            entropy=self.spec.seed,
            spawn_key=(0 if self.relation == "R" else 1, self.source_index),
        )
        return np.random.default_rng(root)

    @property
    def n_batches(self) -> int:
        """Generation batches this source will yield (ceil division)."""
        batch = self.spec.real_chunk_tuples
        return -(-self.total_tuples // batch)

    def batches(self, limit: int | None = None) -> Iterator[np.ndarray]:
        """Generation batches of join-attribute values (uint64 arrays).

        Batch size equals the communication chunk size: the source fills
        its per-destination buffers one generation batch at a time.

        ``limit`` stops after that many batches without drawing the rest —
        a pure wall-clock saving for replay cursors (each call uses a
        fresh seeded RNG, so a truncated iteration is a prefix of the
        full one).
        """
        if limit is not None and limit <= 0:
            return
        rng = self._rng()
        remaining = self.total_tuples
        batch = self.spec.real_chunk_tuples
        produced = 0
        while remaining > 0:
            n = min(batch, remaining)
            yield draw_values(rng, n, self.spec, relation=self.relation)
            remaining -= n
            produced += 1
            if limit is not None and produced >= limit:
                return


def materialize_relation(spec: WorkloadSpec, relation: str, n_sources: int) -> np.ndarray:
    """The full relation as one array (exactly the union of source streams).

    Used by the sequential reference join to validate distributed results.
    """
    parts = []
    for s in range(n_sources):
        stream = RelationStream(spec, relation, n_sources, s)
        parts.extend(stream.batches())
    if not parts:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(parts)
