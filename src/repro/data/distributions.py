"""Join-attribute value distributions (paper §5, 'Data Generation').

The paper generates 64-bit join attributes from either a Uniform or a
Gaussian distribution, with Gaussian mean/sigma expressed on the value
range ("standard deviation of 0.001 / 0.0001" of the range).  We draw in
the unit interval and scale onto a ``VALUE_BITS``-wide integer grid; with
the default order-preserving position map, value skew becomes hash-table
position skew exactly as on the paper's cluster.

A Zipf distribution is included as an extension (heavy-hitter skew with
*duplicate* values rather than *clustered* values).
"""

from __future__ import annotations

import numpy as np

from ..config import Distribution, WorkloadSpec

__all__ = ["VALUE_BITS", "VALUE_SPACE", "draw_values"]

#: width of the join-attribute value grid (values lie in [0, 2**VALUE_BITS))
VALUE_BITS = 32
VALUE_SPACE = 1 << VALUE_BITS


def draw_values(rng: np.random.Generator, n: int, spec: WorkloadSpec,
                relation: str = "R") -> np.ndarray:
    """Draw ``n`` join-attribute values as a uint64 array in [0, VALUE_SPACE).

    ``relation`` selects the per-relation distribution parameters (the
    paper sets mean/sigma individually for R and S; see
    ``WorkloadSpec.params_for``).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    distribution, mean, sigma = spec.params_for(relation)
    if distribution is Distribution.UNIFORM:
        return rng.integers(0, VALUE_SPACE, size=n, dtype=np.uint64)
    if distribution is Distribution.GAUSSIAN:
        return _gaussian(rng, n, mean, sigma)
    if distribution is Distribution.ZIPF:
        return _zipf(rng, n, spec.zipf_s)
    raise ValueError(f"unknown distribution: {distribution}")


def _gaussian(rng: np.random.Generator, n: int, mean: float, sigma: float) -> np.ndarray:
    """Gaussian on the unit range, clipped, scaled to the value grid.

    Clipping (rather than rejection) matches the paper's "user-specified
    mean and standard deviation ... value range": out-of-range draws pile on
    the borders, a negligible mass for the paper's (mean=0.5, sigma<=0.001)
    settings.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    unit = rng.normal(loc=mean, scale=sigma, size=n)
    np.clip(unit, 0.0, 1.0 - 2.0**-53, out=unit)
    return (unit * VALUE_SPACE).astype(np.uint64)


def _zipf(rng: np.random.Generator, n: int, s: float) -> np.ndarray:
    """Zipf-distributed *ranks* spread over the value grid.

    Rank k (1-based) maps to a fixed pseudo-random grid point so that the
    hottest values are not adjacent — isolating duplicate-skew from
    cluster-skew (the Gaussian case).
    """
    if s <= 1.0:
        raise ValueError("zipf exponent must be > 1")
    ranks = rng.zipf(s, size=n).astype(np.uint64)
    # Golden-ratio multiplicative hash sends rank -> grid point, bijective
    # on the 2**VALUE_BITS grid because the multiplier is odd.
    golden = np.uint64(0x9E3779B97F4A7C15)
    mask = np.uint64(VALUE_SPACE - 1)
    return (ranks * golden) & mask
