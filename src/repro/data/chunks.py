"""The columnar chunk format: the unit every hot path moves data in.

Relations flow through the system as **key chunks** — C-contiguous NumPy
``uint64`` arrays of join-attribute values, one array per communication
chunk.  Every stage of the data plane (generation, hashing, routing,
build insert, probe matching, split migration, spill partitioning)
operates on whole chunks with vectorized NumPy kernels; no hot path ever
touches a Python tuple object.  docs/DATA_PLANE.md specifies the format,
its ownership rules, and the argument for why per-chunk cost accounting
reproduces the paper's per-tuple model exactly.

This module is the *single* validation chokepoint: :func:`as_key_chunk`
is the only place a foreign array is admitted into the data plane, and it
either returns a lossless ``uint64`` view/copy or raises — atomically,
before any downstream state is touched.  Once a chunk is inside, every
stage may assume ``KEY_DTYPE`` without re-checking.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = [
    "KEY_DTYPE",
    "as_key_chunk",
    "empty_chunk",
    "chunk_slices",
    "ChunkBuffer",
]

#: the one dtype join-attribute columns are allowed to have inside the
#: data plane (64-bit keys, matching the paper's 64-bit join attributes)
KEY_DTYPE = np.dtype(np.uint64)


def as_key_chunk(values: np.ndarray) -> np.ndarray:
    """Validate/coerce one chunk of join attributes to ``KEY_DTYPE``.

    The data plane relies on every chunk sharing one dtype — a
    mixed-dtype concatenation would silently up-cast to float64 and
    corrupt large keys.  Coercion must be lossless: a value that does not
    round-trip through uint64 (negative, non-finite, fractional, or too
    large) raises instead of joining on a mangled key.  Validation is
    all-or-nothing — the function raises before returning anything, so a
    caller ingesting several chunks can validate them all first and only
    then mutate its own state (see :meth:`NodeHashStore.insert_chunks`).
    """
    values = np.asarray(values)
    if values.dtype == KEY_DTYPE:
        return values
    if values.dtype.kind not in "uif":
        raise TypeError(
            f"join attributes must be numeric, got dtype {values.dtype}"
        )
    if values.dtype.kind == "f" and values.size:
        if not np.isfinite(values).all():
            raise ValueError("join attributes must be finite")
        if (values >= 2.0 ** 64).any():
            raise ValueError("join attributes exceed the uint64 range")
    if values.dtype.kind in "if" and values.size and (values < 0).any():
        raise ValueError("join attributes must be non-negative")
    cast = values.astype(np.uint64)
    if values.size and not np.array_equal(cast.astype(values.dtype), values):
        raise ValueError(
            f"lossy conversion of join attributes from {values.dtype} to uint64"
        )
    return cast


def empty_chunk() -> np.ndarray:
    """A zero-length key chunk (the canonical 'no tuples' value)."""
    return np.empty(0, dtype=KEY_DTYPE)


def chunk_slices(total: int, chunk_tuples: int) -> Iterator[tuple[int, int]]:
    """``(lo, hi)`` spans cutting ``total`` rows into chunk-sized pieces.

    The last span may be short; ``total == 0`` yields nothing.  Used by
    every path that re-chunks a large array for the wire (split
    transfers, replay streams), so chunk-count accounting — what the
    simulator charges per-message costs on — is defined in one place.
    """
    if chunk_tuples < 1:
        raise ValueError(f"chunk_tuples must be >= 1, got {chunk_tuples}")
    for lo in range(0, total, chunk_tuples):
        yield lo, min(lo + chunk_tuples, total)


class ChunkBuffer:
    """Per-destination columnar accumulation with fixed-size chunk flushing.

    Data sources (and anything else that re-partitions a stream) append
    index-selected slices of generation batches per destination; the
    buffer consolidates them lazily and hands back exactly
    ``chunk_tuples``-sized chunks for the wire.  Appended arrays are
    *owned* by the buffer (callers must not mutate them afterwards) and
    are assumed to already be key chunks — admission validation happens
    upstream at :func:`as_key_chunk`.
    """

    def __init__(self, chunk_tuples: int) -> None:
        if chunk_tuples < 1:
            raise ValueError(f"chunk_tuples must be >= 1, got {chunk_tuples}")
        self.chunk_tuples = chunk_tuples
        self._parts: dict[int, list[np.ndarray]] = {}
        self._counts: dict[int, int] = {}

    def append(self, dest: int, values: np.ndarray) -> None:
        if values.size == 0:
            return
        self._parts.setdefault(dest, []).append(values)
        self._counts[dest] = self._counts.get(dest, 0) + int(values.size)

    def pop_full_chunk(self, dest: int) -> np.ndarray | None:
        """Remove exactly ``chunk_tuples`` tuples if available."""
        if self._counts.get(dest, 0) < self.chunk_tuples:
            return None
        pool = np.concatenate(self._parts[dest])
        chunk, rest = pool[: self.chunk_tuples], pool[self.chunk_tuples:]
        self._parts[dest] = [rest] if rest.size else []
        self._counts[dest] = int(rest.size)
        return chunk

    def pop_all(self, dest: int) -> np.ndarray | None:
        """Remove and return everything buffered for one destination."""
        if self._counts.get(dest, 0) == 0:
            return None
        pool = np.concatenate(self._parts[dest])
        self._parts[dest] = []
        self._counts[dest] = 0
        return pool

    def destinations(self) -> list[int]:
        """Destinations with at least one buffered tuple, ascending."""
        return sorted(d for d, c in self._counts.items() if c > 0)

    def drain_everything(self) -> np.ndarray:
        """Remove and return every buffered tuple (for re-partitioning)."""
        pools = [np.concatenate(p) for p in self._parts.values() if p]
        self._parts.clear()
        self._counts.clear()
        if not pools:
            return empty_chunk()
        return np.concatenate(pools)

    @property
    def total_buffered(self) -> int:
        return sum(self._counts.values())
