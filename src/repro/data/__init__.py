"""Synthetic relation generation (paper §5 'Data Generation').

Tuples carry a 64-bit index, a 64-bit join attribute, and an n-byte
payload.  Only the join attributes are materialized (as NumPy arrays);
index and payload bytes are *accounted* in every memory, network and disk
cost via ``WorkloadSpec.tuple_bytes`` but never read by any algorithm, so
omitting their bits changes nothing observable.
"""

from .chunks import KEY_DTYPE, ChunkBuffer, as_key_chunk, chunk_slices, empty_chunk
from .distributions import VALUE_BITS, VALUE_SPACE, draw_values
from .relation import RelationStream, materialize_relation, source_share

__all__ = [
    "KEY_DTYPE",
    "VALUE_BITS",
    "VALUE_SPACE",
    "ChunkBuffer",
    "RelationStream",
    "as_key_chunk",
    "chunk_slices",
    "draw_values",
    "empty_chunk",
    "materialize_relation",
    "source_share",
]
