"""Runtime deadlock detector (lockdep) for the simulation kernel.

A simulation-time wait-for graph over the synchronization primitives in
:mod:`repro.sim.sync`.  Every time a process blocks on a
:class:`~repro.sim.sync.Resource`, :class:`~repro.sim.sync.Mailbox`,
:class:`~repro.sim.sync.Barrier` or :class:`~repro.sim.sync.Latch`, the
monitor records *who* waits on *what*; every time a resource slot is
granted it records *who holds what*.  Two detections fall out:

* **Cycles** — a process blocks on a resource whose holder chain leads
  back to itself (classic ABBA deadlock).  Detected synchronously, the
  moment the closing edge is added: :meth:`LockdepMonitor.blocked` raises
  :class:`LockdepError` with a report naming every waiter in the cycle,
  so the run fails at the first bad acquire instead of hanging until the
  event queue drains.
* **Stalls** — the event queue drains while processes are still blocked
  (no cycle through resources, e.g. a mailbox wait whose sender died).
  :meth:`Simulator.run` appends :meth:`render_stall_report` to its
  :class:`~repro.sim.errors.DeadlockError` so the failure names each
  stuck process, the primitive it waits on, the resources it holds and —
  when a causal log is attached — the message chain that led it there.

The monitor is attached as ``sim.lockdep`` (see
:meth:`LockdepMonitor.install`); the primitives check the attribute on
every blocking transition, so an unattached simulator pays one attribute
load per wait and nothing else.  ``RunContext`` attaches it when
``RunConfig.lockdep`` is set, which the CLI exposes as ``--lockdep`` and
the test suite defaults on (``REPRO_LOCKDEP=0`` opts out).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .errors import SimulationError
from .kernel import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import Process

__all__ = ["LockdepError", "LockdepMonitor", "WaitRecord"]


class LockdepError(SimulationError):
    """A wait-for cycle was closed: the run would deadlock.

    Raised synchronously from the acquire that closes the cycle, inside
    the acquiring process, so it propagates like any process failure and
    carries a full who-waits-on-whom report in its message.
    """


class WaitRecord:
    """One blocked process: what it waits on and since when."""

    __slots__ = ("proc", "primitive", "event", "since")

    def __init__(self, proc: Process, primitive: Any, event: Event, since: float) -> None:
        self.proc = proc
        self.primitive = primitive
        self.event = event
        self.since = since


def _prim_name(primitive: Any) -> str:
    name = getattr(primitive, "name", None)
    kind = type(primitive).__name__
    return f"{kind}({name!r})" if name else kind


class LockdepMonitor:
    """Wait-for graph over sync primitives; see module docstring.

    ``metrics`` (optional) is any object with ``counter(name) -> c`` where
    ``c.inc()`` exists — the run's metrics registry.  ``causal`` (optional)
    is a :class:`repro.obs.causality.CausalLog`; when present, stall
    reports include each stuck actor's causal parent chain.
    """

    def __init__(
        self,
        sim: Simulator,
        metrics: Any | None = None,
        causal: Any | None = None,
    ) -> None:
        self.sim = sim
        self.causal = causal
        #: actor-name aliasing for causal lookups (RunContext fills this)
        self.actor_of: Any | None = None
        # proc -> WaitRecord (a process waits on at most one event)
        self._waits: dict[Process, WaitRecord] = {}
        # event -> procs blocked on it (Latch shares one event)
        self._by_event: dict[Event, list[Process]] = {}
        # resource -> holder procs, oldest first
        self._holders: dict[Any, list[Process]] = {}
        self.waits_tracked = 0
        self.cycles_detected = 0
        self._m_waits = metrics.counter("lockdep.waits_tracked") if metrics else None
        self._m_cycles = metrics.counter("lockdep.cycles_detected") if metrics else None

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def install(self) -> LockdepMonitor:
        """Attach to ``self.sim`` so the sync primitives report to us."""
        self.sim.lockdep = self
        return self

    # ------------------------------------------------------------------
    # hooks called by repro.sim.sync
    # ------------------------------------------------------------------
    def blocked(self, primitive: Any, event: Event) -> None:
        """A wait queued on ``primitive``; ``event`` fires when it's over.

        Captures the currently-running process, registers the wait edge
        and checks for a resource cycle — raising :class:`LockdepError`
        into the acquiring process if one just closed.
        """
        proc = self.sim.current_process
        if proc is None or not proc.is_alive:
            return
        rec = WaitRecord(proc, primitive, event, self.sim.now)
        self._waits[proc] = rec
        self._by_event.setdefault(event, []).append(proc)
        event.add_callback(self._on_fired)
        self.waits_tracked += 1
        if self._m_waits is not None:
            self._m_waits.inc()
        cycle = self._find_cycle(proc)
        if cycle is not None:
            self.cycles_detected += 1
            if self._m_cycles is not None:
                self._m_cycles.inc()
            raise LockdepError(self._render_cycle(cycle))

    def unblocked(self, event: Event) -> None:
        """A pending wait was withdrawn (``cancel`` / ``cancel_get``)."""
        self._clear_event(event)

    def acquired(self, resource: Any) -> None:
        """A resource slot was granted immediately to the running process."""
        proc = self.sim.current_process
        if proc is not None:
            self._holders.setdefault(resource, []).append(proc)

    def handed_off(self, resource: Any, event: Event) -> None:
        """A released slot is being handed to the waiter behind ``event``."""
        self.released(resource)  # the releaser drops its hold first
        for proc in self._by_event.get(event, ()):  # at most one for Resource
            self._holders.setdefault(resource, []).append(proc)
        self._clear_event(event)

    def released(self, resource: Any) -> None:
        """A slot went back to the pool (no waiter to hand it to).

        The releaser need not be the acquirer (the credit protocol splits
        acquire and release across actors), so: drop the running process
        if it holds the resource, else the oldest holder.
        """
        holders = self._holders.get(resource)
        if not holders:
            return
        proc = self.sim.current_process
        if proc is not None and proc in holders:
            holders.remove(proc)
        else:
            holders.pop(0)
        if not holders:
            del self._holders[resource]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _on_fired(self, event: Event) -> None:
        self._clear_event(event)

    def _clear_event(self, event: Event) -> None:
        for proc in self._by_event.pop(event, ()):
            rec = self._waits.get(proc)
            if rec is not None and rec.event is event:
                del self._waits[proc]

    def _find_cycle(self, start: Process) -> list[WaitRecord] | None:
        """DFS along proc -waits-on-> resource -held-by-> proc edges.

        Only capacity-1 (mutex-like) resources contribute holder edges:
        on a multi-slot resource (receive-window credits, port pools) a
        waiter needs *any* slot, so "a holder is blocked" does not imply
        deadlock — one of the other holders can still release.  Mailbox/
        barrier/latch waits and multi-slot waits are leaves of the graph:
        they show up in stall reports but cannot close a cycle here.
        """
        path: list[WaitRecord] = []
        on_path: set[int] = set()

        def visit(proc: Process) -> bool:
            rec = self._waits.get(proc)
            if rec is None or rec.event.triggered:
                return False
            if getattr(rec.primitive, "capacity", 0) != 1:
                return False
            path.append(rec)
            on_path.add(id(proc))
            for holder in self._holders.get(rec.primitive, ()):
                if holder is start:
                    return True
                if not holder.is_alive or id(holder) in on_path:
                    continue
                if visit(holder):
                    return True
            path.pop()
            on_path.discard(id(proc))
            return False

        return path if visit(start) else None

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def _held_by(self, proc: Process) -> list[str]:
        return [
            _prim_name(res)
            for res, holders in self._holders.items()
            if proc in holders
        ]

    def _causal_line(self, proc: Process) -> str | None:
        if self.causal is None:
            return None
        actor = proc.name
        if self.actor_of is not None:
            actor = self.actor_of(proc) or actor
        try:
            eid = self.causal.cause_of(actor)
        except (KeyError, AttributeError):  # pragma: no cover - best effort
            return None
        if eid is None:
            return None
        chain: list[str] = []
        hops = 0
        while eid is not None and hops < 6:
            try:
                edge = self.causal.edge(eid)
            except (KeyError, IndexError):  # pragma: no cover - best effort
                break
            chain.append(f"{edge.msg_type}({edge.src}->{edge.dst})")
            eid = edge.parent
            hops += 1
        if not chain:
            return None
        return "last delivered: " + " <- ".join(chain)

    def _render_cycle(self, cycle: list[WaitRecord]) -> str:
        lines = [
            f"lockdep: wait-for cycle of {len(cycle)} process(es) "
            f"at t={self.sim.now:.6f}"
        ]
        for rec in cycle:
            lines.append(
                f"  {rec.proc.name!r} waits on {_prim_name(rec.primitive)} "
                f"(since t={rec.since:.6f}), holds "
                f"[{', '.join(self._held_by(rec.proc)) or 'nothing'}]"
            )
        lines.append("  each waits on a resource held by the next; none can advance")
        return "\n".join(lines)

    def render_stall_report(self) -> str:
        """Describe every still-blocked process (for DeadlockError)."""
        recs = [
            rec
            for rec in self._waits.values()
            if rec.proc.is_alive and not rec.event.triggered
        ]
        if not recs:
            return ""
        recs.sort(key=lambda r: (r.since, r.proc.name))
        lines = [f"lockdep: {len(recs)} blocked process(es):"]
        for rec in recs:
            lines.append(
                f"  {rec.proc.name!r} waits on {_prim_name(rec.primitive)} "
                f"(since t={rec.since:.6f}), holds "
                f"[{', '.join(self._held_by(rec.proc)) or 'nothing'}]"
            )
            causal = self._causal_line(rec.proc)
            if causal:
                lines.append(f"    {causal}")
        return "\n".join(lines)
