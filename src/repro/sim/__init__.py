"""Deterministic discrete-event simulation kernel.

This package is the bottom substrate of the reproduction: a SimPy-style
event loop with generator processes, used by :mod:`repro.cluster` to model
the OSUMed PC cluster the paper evaluated on.

Public surface::

    from repro.sim import Simulator, Process, Mailbox, Resource, Barrier

    sim = Simulator()

    def worker(sim, box):
        msg = yield box.get()
        yield sim.timeout(1.5)
        return msg * 2

    box = Mailbox(sim)
    p = sim.spawn(worker(sim, box))
    box.put(21)
    sim.run()
    assert p.value == 42 and sim.now == 1.5
"""

from .errors import DeadlockError, Interrupt, SimulationError
from .kernel import Event, Simulator, Timeout
from .lockdep import LockdepError, LockdepMonitor
from .process import AllOf, AnyOf, Process
from .sync import Barrier, Latch, Mailbox, Resource
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "DeadlockError",
    "Event",
    "Interrupt",
    "Latch",
    "LockdepError",
    "LockdepMonitor",
    "Mailbox",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
