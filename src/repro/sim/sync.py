"""Synchronization primitives built on kernel events.

These cover everything the cluster substrate needs:

* :class:`Mailbox` — unbounded FIFO message queue with blocking ``get()``
  (models a node's incoming message queue).
* :class:`Resource` — FIFO server with integer capacity (models NICs, CPUs
  and disks: one request holds a slot for a computed service time).
* :class:`Barrier` — n-party phase barrier.
* :class:`Latch` — countdown latch (fires when count reaches zero).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from .errors import SimulationError
from .kernel import Event, Simulator

__all__ = ["Mailbox", "Resource", "Barrier", "Latch"]


class Mailbox:
    """Unbounded FIFO queue of messages with event-based blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = "mailbox") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        #: total messages ever put (diagnostics)
        self.total_put = 0
        #: optional queue-depth instrument (any object with
        #: ``observe(time, depth)``; wired by the cluster's metrics setup)
        self.depth_probe: Any | None = None
        #: optional dequeue hook, called with each item the moment the
        #: owning actor takes it out (immediate get, put hand-off or
        #: drain); wired to the run's causal log by RunContext
        self.deq_probe: Any | None = None

    def __len__(self) -> int:
        return len(self._items)

    def _sample_depth(self) -> None:
        if self.depth_probe is not None:
            self.depth_probe.observe(self.sim.now, len(self._items))

    def _note_dequeue(self, item: Any) -> None:
        if self.deq_probe is not None:
            self.deq_probe(item)

    def put(self, item: Any) -> None:
        """Deposit a message; wakes the oldest waiting getter, if any."""
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            # Provenance: the hand-off resumes the getter from whatever
            # event is firing right now (one hop, so no long chains).
            getter.parent = self.sim.current_event
            self._note_dequeue(item)
            getter.succeed(item)
        else:
            self._items.append(item)
            self._sample_depth()

    def get(self) -> Event:
        """Return an event that fires with the next message (FIFO).

        A process that abandons a pending get (e.g. recovering from an
        :class:`~repro.sim.errors.Interrupt`) must call :meth:`cancel_get`
        with the event, or the next put() would be consumed by the dead
        getter and the message silently lost.
        """
        ev = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            ev.parent = self.sim.current_event
            self._note_dequeue(item)
            ev.succeed(item)
            self._sample_depth()
        else:
            self._getters.append(ev)
            ld = self.sim.lockdep
            if ld is not None:
                ld.blocked(self, ev)
        return ev

    def cancel_get(self, ev: Event) -> None:
        """Withdraw a pending getter (no-op if it already fired)."""
        try:
            self._getters.remove(ev)
        except ValueError:
            return
        ld = self.sim.lockdep
        if ld is not None:
            ld.unblocked(ev)

    def recv(self) -> Generator[Event, Any, Any]:
        """Blocking receive, interrupt-safe: ``msg = yield from box.recv()``.

        Wraps :meth:`get` so an exception thrown into the waiting process
        (crash injection, shutdown) withdraws the pending getter before
        propagating — the manual ``cancel_get`` dance :meth:`get` demands.
        Use this instead of ``yield box.get()`` in any process a
        :class:`~repro.faults.FaultPlan` can kill (the ``rs-mailbox-get``
        lint rule enforces it)."""
        ev = self.get()
        try:
            item = yield ev
        except BaseException:
            self.cancel_get(ev)
            raise
        return item

    def drain(self) -> list[Any]:
        """Remove and return all currently queued messages (non-blocking)."""
        items = list(self._items)
        self._items.clear()
        for item in items:
            self._note_dequeue(item)
        return items


class Resource:
    """A FIFO server with ``capacity`` identical slots.

    ``acquire()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot.  The common hold-for-a-duration pattern is
    packaged as :meth:`use`, a generator to be ``yield from``-ed inside a
    process::

        yield from nic.use(nbytes / bandwidth)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        #: cumulative busy time integrated over slots (utilization metric)
        self.busy_time = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = Event(self.sim)
        ld = self.sim.lockdep
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(None)
            if ld is not None:
                ld.acquired(self)
        else:
            self._waiters.append(ev)
            if ld is not None:
                try:
                    ld.blocked(self, ev)
                except BaseException:
                    # A wait-for cycle just closed: withdraw the doomed
                    # request so the report's state stays consistent.
                    self.cancel(ev)
                    raise
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        ld = self.sim.lockdep
        if self._waiters:
            # Hand the slot straight to the next waiter; _in_use unchanged.
            waiter = self._waiters.popleft()
            if ld is not None:
                ld.handed_off(self, waiter)
            waiter.succeed(None)
        else:
            self._in_use -= 1
            if ld is not None:
                ld.released(self)

    def cancel(self, ev: Event) -> None:
        """Withdraw an acquire that will never be consumed.

        If the request is still queued it is removed; if the slot was
        already granted it is released.  Required when a process abandons
        a pending acquire (e.g. on :class:`~repro.sim.errors.Interrupt`) —
        otherwise a later release() would hand the slot to the dead waiter
        and leak it forever.
        """
        try:
            self._waiters.remove(ev)
        except ValueError:
            if ev.triggered:
                self.release()
            return
        ld = self.sim.lockdep
        if ld is not None:
            ld.unblocked(ev)

    def grab(self) -> Generator[Event, Any, None]:
        """Acquire one slot, interrupt-safely, without a fixed duration.

        ``yield from res.grab()`` instead of ``yield res.acquire()``
        whenever the waiting process can be interrupted (crash injection):
        a bare ``acquire()`` abandoned mid-wait leaves its request queued,
        and the next ``release()`` hands the slot to the dead waiter —
        leaking it forever.  The caller still owns the eventual
        ``release()`` (typically in a ``finally``)."""
        req = self.acquire()
        try:
            yield req
        except BaseException:
            self.cancel(req)
            raise

    def use(self, duration: float) -> Generator[Event, Any, None]:
        """Hold one slot for ``duration`` simulated seconds (FIFO order).

        Interrupt-safe: an Interrupt while waiting for the slot cancels the
        request; an Interrupt while holding it releases the slot."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        req = self.acquire()
        try:
            yield req
        except BaseException:
            self.cancel(req)
            raise
        try:
            yield self.sim.timeout(duration)
            self.busy_time += duration
        finally:
            self.release()


class Barrier:
    """A reusable barrier for a fixed party count.

    ``wait()`` returns an event firing once all parties of the current
    generation have arrived.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.name = name
        self.parties = parties
        self._arrived: list[Event] = []

    def wait(self) -> Event:
        ev = Event(self.sim)
        self._arrived.append(ev)
        if len(self._arrived) == self.parties:
            arrived, self._arrived = self._arrived, []
            for waiter in arrived:
                waiter.succeed(None)
        else:
            ld = self.sim.lockdep
            if ld is not None:
                ld.blocked(self, ev)
        return ev


class Latch:
    """Countdown latch: fires its event when the count reaches zero."""

    def __init__(self, sim: Simulator, count: int, name: str = "latch") -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self.sim = sim
        self.name = name
        self._count = count
        self._event = Event(sim)
        if count == 0:
            self._event.succeed(None)

    @property
    def count(self) -> int:
        return self._count

    def count_down(self, n: int = 1) -> None:
        if self._count <= 0:
            raise SimulationError(f"latch {self.name!r} already open")
        if n < 1 or n > self._count:
            raise ValueError(f"invalid count_down({n}) with count={self._count}")
        self._count -= n
        if self._count == 0:
            self._event.succeed(None)

    def wait(self) -> Event:
        if not self._event.triggered:
            ld = self.sim.lockdep
            if ld is not None:
                ld.blocked(self, self._event)
        return self._event
