"""Generator-based simulation processes.

A process wraps a Python generator.  Each value the generator yields must be
an :class:`~repro.sim.kernel.Event`; the process suspends until the event is
processed, then resumes with the event's value (or the event's exception is
thrown into the generator).  A process is itself an event that fires with
the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from types import GeneratorType
from collections.abc import Iterable
from typing import Any

from .errors import Interrupt, SimulationError
from .kernel import Event, Simulator

__all__ = ["Process", "AllOf", "AnyOf"]


class Process(Event):
    """A running simulation process (also an event: fires on termination)."""

    __slots__ = ("name", "_generator", "_waiting_on", "_started")

    def __init__(self, sim: Simulator, generator: Iterable, name: str = "") -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        self._started = False
        sim._active_processes += 1
        # Kick off at the current time, but via the queue so that spawning
        # order == first-execution order (deterministic).
        start = Event(sim)
        start.add_callback(self._resume)
        start.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its stale wakeup
        is dropped when it fires); the process decides how to recover.
        Caveats of abandonment: a pending ``Resource.acquire`` /
        ``Mailbox.get`` must be withdrawn with ``cancel`` / ``cancel_get``
        (``Resource.use`` does this itself), and if the abandoned event was
        a *process* that later fails, this waiter no longer observes the
        failure — it surfaces from ``Simulator.run`` only if no other
        observer exists.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        wakeup = Event(self.sim)

        def fire(ev: Event) -> None:
            # The target may have finished between the interrupt call and
            # this wakeup firing (both in the same tick); throwing into an
            # exhausted generator would corrupt the process accounting.
            if not self.triggered:
                self._throw_in(Interrupt(cause))

        wakeup.add_callback(fire)
        wakeup.succeed(None)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resume(self, event: Event | None) -> None:
        if event is not None and event is not self._waiting_on and self._started:
            # The process was interrupted while waiting on this event and
            # has since moved on; drop the stale wakeup.
            return
        self._started = True
        self._waiting_on = None
        if event is None or event._exc is None:
            self._advance(send=event.value if event is not None else None)
        else:
            self._throw_in(event._exc)

    def _throw_in(self, exc: BaseException) -> None:
        self._waiting_on = None
        self._advance(throw=exc)

    def _advance(self, send: Any = None, throw: BaseException | None = None) -> None:
        gen = self._generator
        # Mark this process as the one executing, so sync primitives can
        # attribute blocking waits (lockdep).  Saved/restored because a
        # process body can synchronously trigger events that resume others.
        prev = self.sim._current_process
        self.sim._current_process = self
        try:
            while True:
                try:
                    if throw is not None:
                        target = gen.throw(throw)
                        throw = None
                    else:
                        target = gen.send(send)
                except StopIteration as stop:
                    self.sim._active_processes -= 1
                    self.succeed(stop.value)
                    return
                # The trampoline does not swallow: the exception is re-routed
                # into the event graph via fail() and re-raised at await sites.
                except BaseException as exc:  # repro: allow[fault-swallowed]
                    self.sim._active_processes -= 1
                    self.fail(_annotate(exc, self.name))
                    self.sim._failed_processes.append(self)
                    return

                if not isinstance(target, Event):
                    throw = SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                    send = None
                    continue
                if target._processed:
                    # Already done: resume immediately (same tick) without
                    # bouncing through the queue.
                    if target._exc is not None:
                        throw = target._exc
                        send = None
                    else:
                        send = target._value
                    continue
                self._waiting_on = target
                target.add_callback(self._resume)
                return
        finally:
            self.sim._current_process = prev


def _annotate(exc: BaseException, name: str) -> BaseException:
    if hasattr(exc, "add_note"):  # add_note is 3.11+; 3.10 loses the note
        exc.add_note(f"(raised in simulation process {name!r})")
    return exc


class AllOf(Event):
    """Fires once all given events have fired; value is the list of values.

    Fails fast with the first failure among its children.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: Simulator, events: list[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Fires as soon as any given event fires; value is ``(index, value)``."""

    __slots__ = ("_events",)

    def __init__(self, sim: Simulator, events: list[Event]) -> None:
        if not events:
            raise ValueError("AnyOf requires at least one event")
        super().__init__(sim)
        self._events = list(events)
        for i, ev in enumerate(self._events):
            ev.add_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, ev: Event) -> None:
        if self.triggered:
            return
        if ev._exc is not None:
            self.fail(ev._exc)
        else:
            self.succeed((index, ev._value))
