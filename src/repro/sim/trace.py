"""Lightweight structured tracing for simulation runs.

Algorithm processes emit trace records ("node 7 recruited at t=3.2s",
"split #4: bucket [lo,hi) -> ...") that the driver collects into the run
result.  Tracing is cheap enough to stay on by default; a category filter
lets tests subscribe narrowly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: (simulated time, category, actor, detail mapping)."""

    time: float
    category: str
    actor: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.6f}] {self.category:<12} {self.actor:<14} {kv}"


class Tracer:
    """Collects :class:`TraceRecord` entries in simulation order."""

    def __init__(self, enabled: bool = True, categories: Optional[set[str]] = None):
        self.enabled = enabled
        self.categories = categories
        self.records: list[TraceRecord] = []

    def emit(self, time: float, category: str, actor: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, actor, detail))

    def select(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of one category, in time order."""
        return (r for r in self.records if r.category == category)

    def format(self) -> str:
        return "\n".join(str(r) for r in self.records)

    def __len__(self) -> int:
        return len(self.records)
