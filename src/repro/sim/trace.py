"""Lightweight structured tracing for simulation runs.

Algorithm processes emit trace records ("node 7 recruited at t=3.2s",
"split #4: bucket [lo,hi) -> ...") that the driver collects into the run
result.  Tracing is cheap enough to stay on by default; a category filter
lets tests subscribe narrowly, and ``maxlen`` bounds the buffer for long
runs (oldest records are evicted, ``dropped`` counts them).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import Any

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: (simulated time, category, actor, detail mapping)."""

    time: float
    category: str
    actor: str
    detail: dict[str, Any] = field(default_factory=dict)

    def cells(self) -> tuple[str, str, str, str]:
        """Column cells for tabular rendering (no padding applied)."""
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return (f"[{self.time:.6f}]", self.category, self.actor, kv)

    def __str__(self) -> str:
        return " ".join(self.cells()).rstrip()


class Tracer:
    """Collects :class:`TraceRecord` entries in simulation order.

    ``maxlen=None`` (the default) keeps every record; a positive value
    turns the buffer into a ring that retains only the newest ``maxlen``
    records — the bounded mode long benchmark runs should use.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: set[str] | None = None,
        maxlen: int | None = None,
    ) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.enabled = enabled
        self.categories = categories
        self.maxlen = maxlen
        self.records: Sequence[TraceRecord] = (
            deque(maxlen=maxlen) if maxlen is not None else []
        )
        #: records evicted from a bounded buffer (0 in unbounded mode)
        self.dropped = 0

    def emit(self, time: float, category: str, actor: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if self.maxlen is not None and len(self.records) == self.maxlen:
            self.dropped += 1
        self.records.append(TraceRecord(time, category, actor, detail))  # type: ignore[attr-defined]

    def select(self, category: str) -> Iterator[TraceRecord]:
        """Iterate records of one category, in time order."""
        return (r for r in self.records if r.category == category)

    def format(self) -> str:
        """All records as text, columns padded to the widest cell."""
        rows = [r.cells() for r in self.records]
        if not rows:
            return ""
        widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
        return "\n".join(
            " ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in rows
        )

    def __len__(self) -> int:
        return len(self.records)
