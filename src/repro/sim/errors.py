"""Exception types raised by the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain suspended but
    the event queue is empty, i.e. no event can ever wake them again."""


class StopProcess(SimulationError):
    """Internal control-flow exception used to terminate a process early."""


class Interrupt(SimulationError):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
