"""Discrete-event simulation kernel.

A self-contained, deterministic event loop in the style of SimPy: the
simulation advances by popping the earliest scheduled :class:`Event` off a
priority queue and running its callbacks.  Generator-based processes (see
:mod:`repro.sim.process`) suspend themselves by yielding events and are
resumed from an event callback.

Determinism: events scheduled for the same timestamp fire in scheduling
order (FIFO), enforced by a monotonically increasing sequence number used as
a tie-breaker in the heap.  Given identical seeds, two runs produce
identical traces.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable
from typing import Any

from .errors import DeadlockError, SimulationError

__all__ = ["Event", "Timeout", "Simulator", "PENDING"]


class _Pending:
    """Sentinel for 'this event has no value yet'."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*; it becomes *triggered* once given a value via
    :meth:`succeed` or an exception via :meth:`fail` and scheduled on the
    simulator queue.  When the simulator pops it, the event is *processed*:
    its callbacks run exactly once, in registration order.

    Events are the only synchronization primitive the kernel knows about;
    mailboxes, resources and processes are all built on top of them.
    """

    __slots__ = (
        "sim", "callbacks", "parent",
        "_value", "_exc", "_scheduled", "_processed",
    )

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: callables invoked with this event once it is processed
        self.callbacks: list[Callable[[Event], None]] | None = []
        #: optional provenance tag: the event being processed when this one
        #: was triggered (see :attr:`Simulator.current_event`).  Purely
        #: observational — the kernel never reads it — and opt-in, so the
        #: common case keeps no back-references alive.  Stampers must keep
        #: chains bounded (e.g. mailboxes tag hand-offs one hop deep).
        self.parent: Event | None = None
        self._value: Any = PENDING
        self._exc: BaseException | None = None
        self._scheduled = False
        self._processed = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception and is queued to fire."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self._scheduled:
            raise SimulationError("event has not been triggered yet")
        return self._exc is None

    @property
    def value(self) -> Any:
        """The event's value (raises the failure exception if it failed)."""
        if self._exc is not None:
            raise self._exc
        if self._value is PENDING:
            raise SimulationError("event has no value yet")
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> Event:
        """Schedule this event to fire successfully after ``delay``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> Event:
        """Schedule this event to fire with an exception after ``delay``."""
        if self._scheduled:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exc = exc
        self._value = None
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, fn: Callable[[Event], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs immediately —
        this keeps late waiters correct without racy re-checks.
        """
        if self._processed:
            fn(self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self._scheduled
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: Simulator, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.succeed(value, delay=delay)


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.spawn(my_generator_fn(sim))     # see repro.sim.process
        sim.run()
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: number of processes currently alive (maintained by Process)
        self._active_processes = 0
        self._processed_events = 0
        #: processes that died with an exception (maintained by Process)
        self._failed_processes: list = []
        self._current_event: Event | None = None
        #: process whose generator is executing right now (maintained by
        #: Process._advance); sync primitives use it to attribute waits
        self._current_process: Any | None = None
        #: optional runtime deadlock detector (see repro.sim.lockdep);
        #: the sync primitives report blocking transitions to it when set
        self.lockdep: Any | None = None

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (for tests/diagnostics)."""
        return self._processed_events

    @property
    def current_event(self) -> Event | None:
        """The event whose callbacks are running right now (None between
        steps).  Provenance stampers use it to set :attr:`Event.parent`."""
        return self._current_event

    @property
    def current_process(self) -> Any | None:
        """The process whose generator is executing right now (None when
        no process is on the stack, e.g. during setup code).  Lockdep uses
        it to attribute a blocking wait to its owner."""
        return self._current_process

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def event(self) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _, event = heapq.heappop(self._queue)
        assert when >= self._now, "event queue went backwards"
        self._now = when
        self._processed_events += 1
        self._current_event = event
        try:
            event._run_callbacks()
        finally:
            self._current_event = None

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or simulated time exceeds ``until``.

        Raises :class:`DeadlockError` if processes are still alive when the
        queue drains — that always indicates a protocol bug (a process is
        waiting on an event nobody will ever trigger).
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"run(until={until}) would move time backwards (now={self._now})"
            )
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return
            self.step()
            if self._failed_processes:
                # Fail fast: an unobserved process death would otherwise
                # show up only as a mysterious livelock or deadlock later.
                # Several processes can fail in one step (e.g. a barrier
                # releasing multiple waiters): raise the first *unobserved*
                # failure; observed ones propagate to their waiters.
                for proc in self._failed_processes:
                    if not proc.callbacks and proc._exc is not None:
                        self._failed_processes.clear()
                        raise proc._exc
                self._failed_processes.clear()
        if self._active_processes > 0:
            msg = (
                f"event queue empty but {self._active_processes} "
                "process(es) still waiting"
            )
            if self.lockdep is not None:
                report = self.lockdep.render_stall_report()
                if report:
                    msg = f"{msg}\n{report}"
            raise DeadlockError(msg)

    # Convenience used by Process
    def spawn(self, generator: Iterable, name: str = "") -> Any:
        """Start a generator as a simulation process (see Process)."""
        from .process import Process

        return Process(self, generator, name=name)
