"""Hash-table machinery: position maps, ranges, routers, linear hashing,
per-node stores, and the hybrid reshuffle partitioner."""

from .hashfn import PositionMap, splitmix64
from .linear import LinearHashDirectory, SplitTicket
from .ranges import HashRange, partition_positions, ranges_partition_space
from .reshuffle import greedy_contiguous_partition, partition_range_by_counts
from .routing import LinearHashRouter, RangeRouter, Router
from .table import NodeHashStore

__all__ = [
    "HashRange",
    "LinearHashDirectory",
    "LinearHashRouter",
    "NodeHashStore",
    "PositionMap",
    "RangeRouter",
    "Router",
    "SplitTicket",
    "greedy_contiguous_partition",
    "partition_positions",
    "partition_range_by_counts",
    "ranges_partition_space",
    "splitmix64",
]
