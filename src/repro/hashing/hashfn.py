"""Value -> hash-table-position mapping.

The paper assigns nodes contiguous "hash table ranges", so the hash
function that turns a 64-bit join attribute into a hash-table position must
be **order preserving** for the paper's skew results to materialize
(Gaussian-clustered values land on clustered positions, overloading the
node that owns the hot range).  The default map takes the high bits of the
value.  A mixing variant (SplitMix64 finalizer) is provided as an ablation:
it destroys value locality and with it the skew pathology — benchmarked in
``bench_ablation_hash_mixing``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.distributions import VALUE_BITS

__all__ = ["PositionMap", "splitmix64"]


def splitmix64(values: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a high-quality 64-bit mixing function."""
    x = values.astype(np.uint64, copy=True)
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


@dataclass(frozen=True)
class PositionMap:
    """Maps join-attribute values to hash-table positions in [0, positions).

    ``positions`` must be a power of two no larger than the value space.
    """

    positions: int
    mix: bool = False

    def __post_init__(self) -> None:
        if self.positions < 1 or (self.positions & (self.positions - 1)) != 0:
            raise ValueError(f"positions must be a power of two, got {self.positions}")
        if self.positions > (1 << VALUE_BITS):
            raise ValueError("positions exceeds the value space")

    @property
    def bits(self) -> int:
        return self.positions.bit_length() - 1

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Vectorized value -> position (uint64 in, int64 out)."""
        v = splitmix64(values) if self.mix else values.astype(np.uint64, copy=False)
        shift = np.uint64(VALUE_BITS - self.bits)
        if self.mix:
            # mixed values occupy the full 64-bit space
            shift = np.uint64(64 - self.bits)
        return (v >> shift).astype(np.int64)

    def position_of(self, value: int) -> int:
        """Scalar convenience wrapper."""
        return int(self(np.array([value], dtype=np.uint64))[0])
