"""Scheduler-side linear-hashing directory (split-based algorithm, §4.2.1).

Implements the Litwin/Larson scheme the paper adopts from Amin et al.:
buckets are addressed by the hash-function pair ``(h_i, h_{i+1})`` where
``h_i(p) = p mod (n0 * 2^i)``; a **split pointer** names the next bucket to
split; a **barrier split pointer** trails it and guarantees that a bucket
is never asked to split while a split is in flight and that at most two
hash functions are active simultaneously.

The directory is pure bookkeeping — the scheduler process drives it and the
owning join node performs the actual tuple movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from .routing import LinearHashRouter

__all__ = ["SplitTicket", "LinearHashDirectory"]


@dataclass(frozen=True)
class SplitTicket:
    """One in-flight split: bucket ``bucket`` (owned by ``owner_node``)
    splits into (bucket, new_bucket) at hash level ``level``; the new bucket
    lands on ``new_node``."""

    bucket: int
    new_bucket: int
    owner_node: int
    new_node: int
    level: int
    modulus: int  # n0 * 2**level at the time of the split


class LinearHashDirectory:
    """Bucket -> node map plus split-pointer state."""

    def __init__(self, n0: int, initial_nodes: list[int]) -> None:
        if n0 != len(initial_nodes):
            raise ValueError("need exactly one initial node per initial bucket")
        if n0 < 1:
            raise ValueError("n0 must be >= 1")
        self.n0 = n0
        self.level = 0
        self.split_pointer = 0
        #: trails split_pointer; equal when no split is in flight
        self.barrier_pointer = 0
        self.bucket_nodes: list[int] = list(initial_nodes)
        self._in_flight: SplitTicket | None = None
        self.completed_splits = 0

    # ------------------------------------------------------------------
    @property
    def modulus(self) -> int:
        """Current ``m = n0 * 2**level``."""
        return self.n0 << self.level

    @property
    def n_buckets(self) -> int:
        return len(self.bucket_nodes)

    @property
    def split_in_progress(self) -> bool:
        return self._in_flight is not None

    @property
    def next_new_bucket(self) -> int:
        """Bucket id the *next* ``begin_split`` will create.

        Buckets grow densely (``modulus + split_pointer``), so the id is
        known before a recruit is chosen — which lets the scheduler run
        acked recruitment (retrying different candidates) and commit the
        directory only once the recruit confirmed it is alive.
        """
        if self._in_flight is not None:
            raise RuntimeError("split already in progress (barrier pointer held)")
        return self.modulus + self.split_pointer

    def owner_of_bucket(self, bucket: int) -> int:
        return self.bucket_nodes[bucket]

    # ------------------------------------------------------------------
    def begin_split(self, new_node: int) -> SplitTicket:
        """Start splitting the bucket at the split pointer onto ``new_node``.

        The barrier pointer stays put until :meth:`complete_split`, so a
        second ``begin_split`` before completion is a protocol error.
        """
        if self._in_flight is not None:
            raise RuntimeError("split already in progress (barrier pointer held)")
        m = self.modulus
        bucket = self.split_pointer
        ticket = SplitTicket(
            bucket=bucket,
            new_bucket=m + bucket,
            owner_node=self.bucket_nodes[bucket],
            new_node=new_node,
            level=self.level,
            modulus=m,
        )
        self._in_flight = ticket
        # Advance the split pointer immediately (next split targets the next
        # bucket); the barrier pointer advances only on completion.
        self.split_pointer += 1
        return ticket

    @classmethod
    def from_router(cls, router: LinearHashRouter) -> LinearHashDirectory:
        """Rebuild directory state from a routing snapshot.

        Used by the backup scheduler after a takeover: snapshots are only
        taken while no split is in flight, so ``barrier == split`` pointer
        and a pending split decision can be re-driven with ``begin_split``.
        """
        d = cls(router.n0, list(router.bucket_nodes[: router.n0]))
        d.level = router.level
        d.split_pointer = router.split_pointer
        d.barrier_pointer = router.split_pointer
        d.bucket_nodes = list(router.bucket_nodes)
        return d

    def complete_split(self, ticket: SplitTicket) -> None:
        """Record a finished split (the 'done' message from the bucket)."""
        if self._in_flight is not ticket:
            raise RuntimeError("completing a split that is not in flight")
        self._in_flight = None
        assert ticket.new_bucket == len(self.bucket_nodes), "buckets grow densely"
        self.bucket_nodes.append(ticket.new_node)
        self.barrier_pointer += 1
        self.completed_splits += 1
        if self.split_pointer == self.modulus:
            # A full level of splits completed: double the modulus.
            self.level += 1
            self.split_pointer = 0
            self.barrier_pointer = 0

    # ------------------------------------------------------------------
    def router(self, version: int) -> LinearHashRouter:
        """Routing snapshot reflecting completed splits only."""
        if self._in_flight is not None:
            raise RuntimeError("cannot snapshot while a split is in flight")
        return LinearHashRouter(
            n0=self.n0,
            level=self.level,
            split_pointer=self.split_pointer,
            bucket_nodes=tuple(self.bucket_nodes),
            version=version,
        )

    def check_invariants(self) -> None:
        """Structural invariants (exercised by property tests)."""
        m = self.modulus
        assert 0 <= self.split_pointer < m or (self.split_pointer == m and self.split_in_progress)
        expected = m + self.split_pointer - (1 if self.split_in_progress else 0)
        assert len(self.bucket_nodes) == expected, (
            f"bucket count {len(self.bucket_nodes)} != {expected}"
        )
        assert self.barrier_pointer <= self.split_pointer or self.split_pointer == 0
