"""Greedy contiguous repartitioning (the hybrid algorithm's reshuffle step).

Paper §4.2.3: after the build phase, every set of nodes sharing a
replicated hash range computes a global per-position tuple count and cuts
the range into |set| contiguous sub-arrays of (near-)equal total weight.
This module implements the cut; the comm protocol around it lives in
:mod:`repro.core.hybrid`.
"""

from __future__ import annotations

import numpy as np

from .ranges import HashRange

__all__ = ["greedy_contiguous_partition", "partition_range_by_counts"]


def greedy_contiguous_partition(weights: np.ndarray, parts: int) -> list[tuple[int, int]]:
    """Cut ``range(len(weights))`` into ``parts`` contiguous slices of
    near-equal total weight.

    Greedy prefix rule (the paper's "simple greedy heuristic"): boundary k
    is placed at the first index where the cumulative weight reaches
    ``total * k / parts``.  Guarantees:

    * slices are contiguous, ordered and tile ``[0, len(weights))``;
    * every slice's weight is at most ``total/parts + max(weights)``
      (can't overshoot an ideal boundary by more than one position).

    Returns a list of half-open offset pairs.  Zero-width slices are legal
    when ``parts`` exceeds the number of positive-weight positions.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    n = int(len(weights))
    if n == 0:
        raise ValueError("weights must be non-empty")
    w = np.asarray(weights, dtype=np.float64)
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    cum = np.cumsum(w)
    total = float(cum[-1])
    if total == 0.0:
        # Nothing stored: fall back to equal-width cuts.
        bounds = np.linspace(0, n, parts + 1).astype(np.int64)
    else:
        targets = total * np.arange(1, parts) / parts
        # first index whose cumulative weight reaches the target, +1 to make
        # the boundary exclusive of that index's slice end
        inner = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.concatenate(([0], np.minimum(inner, n), [n]))
        bounds = np.maximum.accumulate(bounds)
    return [(int(bounds[k]), int(bounds[k + 1])) for k in range(parts)]


def partition_range_by_counts(rng: HashRange, counts: np.ndarray, parts: int) -> list[HashRange | None]:
    """Apply the greedy cut to a hash range given per-position counts.

    ``counts[k]`` is the global tuple count at position ``rng.lo + k``.
    Returns one entry per part: a :class:`HashRange` or ``None`` for a
    zero-width slice (that node ends up owning nothing).
    """
    if len(counts) != rng.width:
        raise ValueError("counts length must equal the range width")
    slices = greedy_contiguous_partition(counts, parts)
    out: list[HashRange | None] = []
    for lo_off, hi_off in slices:
        if hi_off > lo_off:
            out.append(HashRange(rng.lo + lo_off, rng.lo + hi_off))
        else:
            out.append(None)
    return out
