"""Half-open hash-table position ranges ``[lo, hi)``.

The unit the paper's algorithms reason in: every bucket is a contiguous
range of hash-table positions; splits bisect ranges; replication duplicates
them; reshuffling re-partitions them.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

__all__ = ["HashRange", "partition_positions", "ranges_partition_space"]


@dataclass(frozen=True, order=True)
class HashRange:
    """A half-open interval of hash-table positions."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo < self.hi):
            raise ValueError(f"invalid range [{self.lo}, {self.hi})")

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def contains(self, position: int) -> bool:
        return self.lo <= position < self.hi

    def bisect(self) -> tuple[HashRange, HashRange]:
        """Split at the midpoint (paper's split-based expansion step).

        Raises ``ValueError`` when the range is a single position and
        cannot be split further.
        """
        if self.width < 2:
            raise ValueError(f"range {self} is atomic and cannot be bisected")
        mid = self.lo + self.width // 2
        return HashRange(self.lo, mid), HashRange(mid, self.hi)

    def overlaps(self, other: HashRange) -> bool:
        return self.lo < other.hi and other.lo < self.hi

    def __str__(self) -> str:
        return f"[{self.lo},{self.hi})"


def partition_positions(positions: int, parts: int) -> list[HashRange]:
    """Split ``[0, positions)`` into ``parts`` near-equal contiguous ranges.

    This is the paper's initial bucket assignment: one bucket per initial
    join node.  Remainder positions go to the lowest-index ranges.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts > positions:
        raise ValueError(f"cannot cut {positions} positions into {parts} parts")
    base, rem = divmod(positions, parts)
    out = []
    lo = 0
    for k in range(parts):
        width = base + (1 if k < rem else 0)
        out.append(HashRange(lo, lo + width))
        lo += width
    return out


def ranges_partition_space(ranges: Iterable[HashRange], positions: int) -> bool:
    """True iff ``ranges`` tile ``[0, positions)`` exactly (no gap/overlap)."""
    ordered = sorted(ranges)
    if not ordered:
        return positions == 0
    if ordered[0].lo != 0 or ordered[-1].hi != positions:
        return False
    return all(a.hi == b.lo for a, b in zip(ordered, ordered[1:]))
