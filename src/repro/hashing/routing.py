"""Routing tables: which join node receives a tuple with a given position.

Data sources hold a versioned router and re-partition every generation
batch with it.  Two families:

* :class:`RangeRouter` — contiguous hash ranges, each owned by one node or
  (replication-based algorithm) a *replica chain*.  During the build phase
  a range's tuples flow to the newest replica only; during the probe phase
  a tuple is **broadcast to every replica** of its range (paper §4.2.2).
* :class:`LinearHashRouter` — the Litwin/Larson linear-hashing address
  function used by the split-based algorithm's LINEAR_POINTER policy:
  buckets are addressed by ``h_i(p) = p mod (n0 * 2^i)`` and, left of the
  split pointer, ``h_{i+1}``.

Both partition vectorized batches of positions into per-node index arrays.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .ranges import HashRange, ranges_partition_space

__all__ = ["Router", "RangeRouter", "LinearHashRouter"]


def _group_indices(keys: np.ndarray, n_groups: int) -> list[np.ndarray]:
    """Stable-partition ``arange(len(keys))`` by integer key in [0, n_groups)."""
    if n_groups == 1:
        # One group: every key is 0 and the stable order is the identity.
        return [np.arange(keys.size, dtype=np.intp)]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    cuts = np.searchsorted(sorted_keys, np.arange(n_groups + 1))
    return [order[cuts[g]: cuts[g + 1]] for g in range(n_groups)]


class Router(ABC):
    """Maps hash-table positions to destination join nodes."""

    #: monotone version number; sources apply only newer tables
    version: int

    @abstractmethod
    def partition_build(self, positions: np.ndarray) -> dict[int, np.ndarray]:
        """node_id -> indices of ``positions`` to send there (build phase)."""

    @abstractmethod
    def partition_probe(self, positions: np.ndarray) -> dict[int, np.ndarray]:
        """node_id -> indices (probe phase; may duplicate indices across nodes)."""

    def probe_groups(
        self, positions: np.ndarray
    ) -> list[tuple[tuple[int, ...], np.ndarray]]:
        """Probe routing grouped by replica chain: ``(dests, indices)`` pairs.

        Every destination in ``dests`` receives the *same* index set, so a
        caller can materialize ``values[indices]`` once per group and hand
        the shared array to each replica instead of gathering one private
        copy per destination (the probe-broadcast amplification of the
        replication-based algorithm).  The default covers non-replicating
        routers: each destination is its own singleton group.
        """
        return [((n,), idx)
                for n, idx in sorted(self.partition_probe(positions).items())]

    @abstractmethod
    def owners(self) -> set[int]:
        """All node ids reachable through this router."""

    @abstractmethod
    def wire_bytes(self) -> int:
        """Serialized size when the scheduler broadcasts this table."""


@dataclass(frozen=True)
class RangeRouter(Router):
    """Contiguous ranges, each with an ordered replica chain.

    ``entries`` must tile ``[0, positions)``; each entry's destination
    tuple lists replicas oldest-first — the **last** one is the active
    receiver in the build phase.
    """

    positions: int
    entries: tuple[tuple[HashRange, tuple[int, ...]], ...]
    version: int = 0

    def __post_init__(self) -> None:
        ranges = [r for r, _ in self.entries]
        if not ranges_partition_space(ranges, self.positions):
            raise ValueError("RangeRouter entries must tile the position space")
        if sorted(ranges) != list(ranges):
            raise ValueError("RangeRouter entries must be sorted by range")
        for r, dests in self.entries:
            if not dests:
                raise ValueError(f"range {r} has no destination")
            if len(set(dests)) != len(dests):
                raise ValueError(f"range {r} repeats a destination: {dests}")
        object.__setattr__(
            self, "_bounds", np.array([r.lo for r in ranges], dtype=np.int64)
        )

    @classmethod
    def initial(cls, ranges: list[HashRange], nodes: list[int], positions: int) -> RangeRouter:
        """The paper's initial assignment: range k -> initial node k."""
        if len(ranges) != len(nodes):
            raise ValueError("one node per initial range required")
        return cls(
            positions=positions,
            entries=tuple((r, (n,)) for r, n in zip(ranges, nodes)),
            version=0,
        )

    # ------------------------------------------------------------------
    def _range_indices(self, positions: np.ndarray) -> list[np.ndarray]:
        if len(self.entries) == 1:
            # Single range owning the whole space: no search needed.
            return [np.arange(positions.size, dtype=np.intp)]
        bounds: np.ndarray = self._bounds  # type: ignore[attr-defined]
        keys = np.searchsorted(bounds, positions, side="right") - 1
        return _group_indices(keys, len(self.entries))

    def partition_build(self, positions: np.ndarray) -> dict[int, np.ndarray]:
        out: dict[int, list[np.ndarray]] = {}
        for (rng, dests), idx in zip(self.entries, self._range_indices(positions)):
            if idx.size:
                out.setdefault(dests[-1], []).append(idx)
        return {n: np.concatenate(parts) if len(parts) > 1 else parts[0]
                for n, parts in out.items()}

    def partition_probe(self, positions: np.ndarray) -> dict[int, np.ndarray]:
        out: dict[int, list[np.ndarray]] = {}
        for (rng, dests), idx in zip(self.entries, self._range_indices(positions)):
            if idx.size:
                for n in dests:
                    out.setdefault(n, []).append(idx)
        return {n: np.concatenate(parts) if len(parts) > 1 else parts[0]
                for n, parts in out.items()}

    def probe_groups(
        self, positions: np.ndarray
    ) -> list[tuple[tuple[int, ...], np.ndarray]]:
        """One ``(replica chain, indices)`` pair per range with probe tuples.

        Chains longer than one are exactly the broadcast groups of
        paper §4.2.2; sharing the gathered array across a chain removes
        the per-replica duplicate materialization."""
        return [(dests, idx)
                for (rng, dests), idx
                in zip(self.entries, self._range_indices(positions))
                if idx.size]

    def owners(self) -> set[int]:
        return {n for _, dests in self.entries for n in dests}

    def wire_bytes(self) -> int:
        # lo, hi: 8B each; each destination id: 4B; header 16B
        return 16 + sum(16 + 4 * len(dests) for _, dests in self.entries)

    # ------------------------------------------------------------------
    # functional updates used by the strategies
    # ------------------------------------------------------------------
    def entry_index_for(self, position: int) -> int:
        bounds: np.ndarray = self._bounds  # type: ignore[attr-defined]
        return int(np.searchsorted(bounds, position, side="right") - 1)

    def with_replica(self, range_index: int, new_node: int, version: int) -> RangeRouter:
        """Append a replica to one range's chain (replication expansion)."""
        entries = list(self.entries)
        rng, dests = entries[range_index]
        entries[range_index] = (rng, dests + (new_node,))
        return RangeRouter(self.positions, tuple(entries), version)

    def with_bisection(
        self, range_index: int, keeper: int, new_node: int, version: int
    ) -> RangeRouter:
        """Bisect one single-owner range between keeper and new node."""
        entries = list(self.entries)
        rng, dests = entries[range_index]
        if len(dests) != 1:
            raise ValueError("cannot bisect a replicated range")
        left, right = rng.bisect()
        entries[range_index: range_index + 1] = [
            (left, (keeper,)),
            (right, (new_node,)),
        ]
        return RangeRouter(self.positions, tuple(entries), version)

    def replicated_groups(self) -> list[tuple[HashRange, tuple[int, ...]]]:
        """Ranges with more than one replica (hybrid reshuffle input)."""
        return [(r, d) for r, d in self.entries if len(d) > 1]

    def with_takeover(
        self, lost: set[int], target: int, version: int
    ) -> RangeRouter:
        """Crash recovery: every entry touching a lost node goes to ``target``.

        Replica chains hold *disjoint temporal segments*, not copies, so a
        chain that lost any member cannot serve its range from survivors;
        the whole entry collapses to the single fresh ``target`` and the
        sources re-stream the range to it (see repro.core.membership).
        Adjacent collapsed entries are merged so the target ends up owning
        one contiguous range — exactly what its ActivateJoin advertised —
        and a later bisection of the target stays well-defined.
        """
        collapsed = [
            (rng, (target,)) if set(dests) & lost else (rng, dests)
            for rng, dests in self.entries
        ]
        merged: list[tuple[HashRange, tuple[int, ...]]] = []
        for rng, dests in collapsed:
            if (
                merged
                and dests == (target,)
                and merged[-1][1] == (target,)
                and merged[-1][0].hi == rng.lo
            ):
                prev, _ = merged.pop()
                merged.append((HashRange(prev.lo, rng.hi), dests))
            else:
                merged.append((rng, dests))
        return RangeRouter(self.positions, tuple(merged), version)


class LinearHashRouter(Router):
    """Linear-hashing bucket addressing (split-based, LINEAR_POINTER policy).

    State mirrors Litwin's scheme on the *position* key space: ``n0``
    initial buckets, level ``i``, split pointer ``s``.  Bucket ``b`` of a
    position ``p``::

        m = n0 * 2**i
        b = p mod m
        if b < s:  b = p mod 2m        # either b or b + m

    Buckets map to nodes through ``bucket_nodes``.
    """

    def __init__(self, n0: int, level: int, split_pointer: int,
                 bucket_nodes: tuple[int, ...], version: int = 0) -> None:
        if n0 < 1 or level < 0:
            raise ValueError("invalid linear hash parameters")
        m = n0 << level
        if not (0 <= split_pointer < m):
            raise ValueError(f"split pointer {split_pointer} out of [0, {m})")
        if len(bucket_nodes) != m + split_pointer:
            raise ValueError(
                f"expected {m + split_pointer} buckets, got {len(bucket_nodes)}"
            )
        self.n0 = n0
        self.level = level
        self.split_pointer = split_pointer
        self.bucket_nodes = bucket_nodes
        self.version = version

    @property
    def n_buckets(self) -> int:
        return len(self.bucket_nodes)

    def bucket_of(self, positions: np.ndarray) -> np.ndarray:
        m = np.int64(self.n0 << self.level)
        b = (positions % m).astype(np.int64)
        pre = b < self.split_pointer
        if pre.any():
            b[pre] = positions[pre] % (m * 2)
        return b

    def partition_build(self, positions: np.ndarray) -> dict[int, np.ndarray]:
        buckets = self.bucket_of(positions)
        out: dict[int, list[np.ndarray]] = {}
        for b, idx in enumerate(_group_indices(buckets, self.n_buckets)):
            if idx.size:
                out.setdefault(self.bucket_nodes[b], []).append(idx)
        return {n: np.concatenate(parts) if len(parts) > 1 else parts[0]
                for n, parts in out.items()}

    # split-based never replicates: probe routing == build routing
    partition_probe = partition_build

    def owners(self) -> set[int]:
        return set(self.bucket_nodes)

    def wire_bytes(self) -> int:
        return 32 + 4 * self.n_buckets

    def with_takeover(
        self, lost: set[int], target: int, version: int
    ) -> LinearHashRouter:
        """Crash recovery: every bucket owned by a lost node moves to
        ``target`` (the sources then re-stream those buckets to it)."""
        return LinearHashRouter(
            self.n0, self.level, self.split_pointer,
            tuple(target if n in lost else n for n in self.bucket_nodes),
            version,
        )
