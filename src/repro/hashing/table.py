"""Per-join-node hash-table storage with vectorized probe.

Stores the build-relation tuples a node has accepted.  Values are appended
chunk-wise (cheap) and consolidated into a deduplicated ``(unique values,
counts)`` pair lazily when the probe phase — or a split extraction — needs
ordered access.  Probing a chunk is then one ``np.searchsorted`` over the
unique values (typically far smaller than the raw store) plus a gather of
the match counts; see docs/DATA_PLANE.md §probe for the cost argument.

Only the 64-bit join attributes are materialized; payload/index bytes are
charged to the node's :class:`~repro.cluster.memory.MemoryAccount` by the
join process (see DESIGN.md §2 on accounted-but-not-materialized bytes).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..data.chunks import as_key_chunk, empty_chunk
from .hashfn import PositionMap

__all__ = ["NodeHashStore"]


class NodeHashStore:
    """Build-side tuple store for one join node."""

    def __init__(self, posmap: PositionMap) -> None:
        self.posmap = posmap
        self._chunks: list[np.ndarray] = []
        self._uniq: np.ndarray | None = None
        self._ucounts: np.ndarray | None = None
        self._count = 0
        #: optional metric counters (objects with ``inc(n)``; wired by the
        #: owning join process)
        self.inserted_counter: Any | None = None
        self.match_counter: Any | None = None
        self.probe_rows_counter: Any | None = None

    # ------------------------------------------------------------------
    @property
    def stored_tuples(self) -> int:
        return self._count

    def insert(self, values: np.ndarray) -> None:
        """Append a chunk of build tuples (no copy; caller cedes ownership).

        Raises ``TypeError``/``ValueError`` unless ``values`` is — or
        losslessly coerces to — a uint64 array.
        """
        self.insert_chunks([values])

    def insert_chunks(self, chunks: Sequence[np.ndarray]) -> None:
        """Atomically append several chunks of build tuples.

        Every chunk is validated through
        :func:`repro.data.chunks.as_key_chunk` *before* any of them is
        appended, so a mixed-dtype or lossy chunk anywhere in the batch
        rejects the whole ingest without partially applying it.
        """
        validated = [as_key_chunk(c) for c in chunks]
        added = 0
        for values in validated:
            if values.size == 0:
                continue
            self._chunks.append(values)
            added += int(values.size)
        if added == 0:
            return
        self._count += added
        self._uniq = None
        self._ucounts = None
        if self.inserted_counter is not None:
            self.inserted_counter.inc(added)

    # ------------------------------------------------------------------
    def _all_values(self) -> np.ndarray:
        if len(self._chunks) == 0:
            return empty_chunk()
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks)]
        return self._chunks[0]

    def finalize(self) -> None:
        """Consolidate stored values into (unique, counts) for probing.

        Idempotent; invalidated by any mutation (insert/extract).  The
        deduplicated form makes each probe chunk cost one binary-search
        pass over ``|unique|`` elements instead of two over ``|stored|``.
        """
        if self._uniq is None:
            self._uniq, self._ucounts = np.unique(
                self._all_values(), return_counts=True
            )

    def probe(self, values: np.ndarray) -> int:
        """Number of join matches between ``values`` and the stored tuples.

        Equi-join semantics: a probe tuple matches every stored tuple with
        an equal join attribute, so the result counts pairs.
        """
        values = as_key_chunk(values)
        if self.probe_rows_counter is not None and values.size:
            self.probe_rows_counter.inc(int(values.size))
        if values.size == 0 or self._count == 0:
            return 0
        self.finalize()
        assert self._uniq is not None and self._ucounts is not None
        # Sorting the probe chunk first keeps the searchsorted walk
        # cache-local; the total is order-independent so this is free.
        queries = np.sort(values)
        idx = np.searchsorted(self._uniq, queries, side="left")
        np.minimum(idx, self._uniq.size - 1, out=idx)
        hit = self._uniq[idx] == queries
        found = int(self._ucounts[idx[hit]].sum())
        if self.match_counter is not None and found:
            self.match_counter.inc(found)
        return found

    # ------------------------------------------------------------------
    # extraction (splits / reshuffle)
    # ------------------------------------------------------------------
    def extract_where(self, predicate: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Remove and return stored values whose *positions* satisfy
        ``predicate(positions) -> bool mask``."""
        values = self._all_values()
        if values.size == 0:
            return empty_chunk()
        mask = predicate(self.posmap(values))
        out = values[mask]
        keep = values[~mask]
        self._chunks = [keep] if keep.size else []
        self._count = int(keep.size)
        self._uniq = None
        self._ucounts = None
        return out

    def extract_position_range(self, lo: int, hi: int) -> np.ndarray:
        """Remove and return values with position in ``[lo, hi)``."""
        return self.extract_where(lambda pos: (pos >= lo) & (pos < hi))

    def extract_linear_bucket(self, new_bucket: int, modulus: int) -> np.ndarray:
        """Remove values rehashing to ``new_bucket`` under ``h_{i+1}``.

        ``modulus`` is ``m = n0 * 2^i`` at split time; the new bucket index
        is ``m + s`` and ``h_{i+1}(p) = p mod 2m``.
        """
        return self.extract_where(lambda pos: (pos % (2 * modulus)) == new_bucket)

    # ------------------------------------------------------------------
    def position_counts(self, lo: int, hi: int) -> np.ndarray:
        """Tuples stored per hash position over ``[lo, hi)`` (reshuffle input)."""
        if hi <= lo:
            raise ValueError("empty counting range")
        values = self._all_values()
        if values.size == 0:
            return np.zeros(hi - lo, dtype=np.int64)
        pos = self.posmap(values)
        inside = (pos >= lo) & (pos < hi)
        return np.bincount(pos[inside] - lo, minlength=hi - lo).astype(np.int64)
