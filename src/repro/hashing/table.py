"""Per-join-node hash-table storage with vectorized probe.

Stores the build-relation tuples a node has accepted.  Values are appended
chunk-wise (cheap) and consolidated into a sorted array lazily when the
probe phase — or a split extraction — needs ordered access.

Only the 64-bit join attributes are materialized; payload/index bytes are
charged to the node's :class:`~repro.cluster.memory.MemoryAccount` by the
join process (see DESIGN.md §2 on accounted-but-not-materialized bytes).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

import numpy as np

from .hashfn import PositionMap

__all__ = ["NodeHashStore"]


def _as_uint64(values: np.ndarray) -> np.ndarray:
    """Validate/coerce a chunk of join attributes to uint64.

    The store's probe path relies on every chunk sharing one dtype — a
    mixed-dtype concatenation would silently up-cast to float64 and
    corrupt large keys.  Coercion must be lossless: a value that does not
    round-trip through uint64 (negative, non-finite, fractional, or too
    large) raises instead of joining on a mangled key.
    """
    values = np.asarray(values)
    if values.dtype == np.uint64:
        return values
    if values.dtype.kind not in "uif":
        raise TypeError(
            f"join attributes must be numeric, got dtype {values.dtype}"
        )
    if values.dtype.kind == "f" and values.size:
        if not np.isfinite(values).all():
            raise ValueError("join attributes must be finite")
        if (values >= 2.0 ** 64).any():
            raise ValueError("join attributes exceed the uint64 range")
    if values.dtype.kind in "if" and values.size and (values < 0).any():
        raise ValueError("join attributes must be non-negative")
    cast = values.astype(np.uint64)
    if values.size and not np.array_equal(cast.astype(values.dtype), values):
        raise ValueError(
            f"lossy conversion of join attributes from {values.dtype} to uint64"
        )
    return cast


class NodeHashStore:
    """Build-side tuple store for one join node."""

    def __init__(self, posmap: PositionMap) -> None:
        self.posmap = posmap
        self._chunks: list[np.ndarray] = []
        self._sorted: np.ndarray | None = None
        self._count = 0
        #: optional metric counters (objects with ``inc(n)``; wired by the
        #: owning join process)
        self.inserted_counter: Any | None = None
        self.match_counter: Any | None = None

    # ------------------------------------------------------------------
    @property
    def stored_tuples(self) -> int:
        return self._count

    def insert(self, values: np.ndarray) -> None:
        """Append a chunk of build tuples (no copy; caller cedes ownership).

        Raises ``TypeError``/``ValueError`` unless ``values`` is — or
        losslessly coerces to — a uint64 array.
        """
        values = _as_uint64(values)
        if values.size == 0:
            return
        self._chunks.append(values)
        self._count += int(values.size)
        self._sorted = None
        if self.inserted_counter is not None:
            self.inserted_counter.inc(int(values.size))

    # ------------------------------------------------------------------
    def _all_values(self) -> np.ndarray:
        if len(self._chunks) == 0:
            return np.empty(0, dtype=np.uint64)
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks)]
        return self._chunks[0]

    def finalize(self) -> None:
        """Sort stored values for O(log n) probing (idempotent)."""
        if self._sorted is None:
            values = self._all_values()
            self._sorted = np.sort(values)

    def probe(self, values: np.ndarray) -> int:
        """Number of join matches between ``values`` and the stored tuples.

        Equi-join semantics: a probe tuple matches every stored tuple with
        an equal join attribute, so the result counts pairs.
        """
        if values.size == 0 or self._count == 0:
            return 0
        self.finalize()
        assert self._sorted is not None
        left = np.searchsorted(self._sorted, values, side="left")
        right = np.searchsorted(self._sorted, values, side="right")
        found = int((right - left).sum())
        if self.match_counter is not None and found:
            self.match_counter.inc(found)
        return found

    # ------------------------------------------------------------------
    # extraction (splits / reshuffle)
    # ------------------------------------------------------------------
    def extract_where(self, predicate: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Remove and return stored values whose *positions* satisfy
        ``predicate(positions) -> bool mask``."""
        values = self._all_values()
        if values.size == 0:
            return np.empty(0, dtype=np.uint64)
        mask = predicate(self.posmap(values))
        out = values[mask]
        keep = values[~mask]
        self._chunks = [keep] if keep.size else []
        self._count = int(keep.size)
        self._sorted = None
        return out

    def extract_position_range(self, lo: int, hi: int) -> np.ndarray:
        """Remove and return values with position in ``[lo, hi)``."""
        return self.extract_where(lambda pos: (pos >= lo) & (pos < hi))

    def extract_linear_bucket(self, new_bucket: int, modulus: int) -> np.ndarray:
        """Remove values rehashing to ``new_bucket`` under ``h_{i+1}``.

        ``modulus`` is ``m = n0 * 2^i`` at split time; the new bucket index
        is ``m + s`` and ``h_{i+1}(p) = p mod 2m``.
        """
        return self.extract_where(lambda pos: (pos % (2 * modulus)) == new_bucket)

    # ------------------------------------------------------------------
    def position_counts(self, lo: int, hi: int) -> np.ndarray:
        """Tuples stored per hash position over ``[lo, hi)`` (reshuffle input)."""
        if hi <= lo:
            raise ValueError("empty counting range")
        values = self._all_values()
        if values.size == 0:
            return np.zeros(hi - lo, dtype=np.int64)
        pos = self.posmap(values)
        inside = (pos >= lo) & (pos < hi)
        return np.bincount(pos[inside] - lo, minlength=hi - lo).astype(np.int64)
